"""Rule-engine core for the :mod:`repro.devtools` static-analysis suite.

The engine is deliberately tiny and dependency-free (stdlib :mod:`ast`
only).  Rules come in two scopes:

* a **module rule** (:class:`Rule`) has a ``rule_id`` and a ``check``
  method yielding :class:`Finding` objects for one parsed module;
* a **project rule** (:class:`ProjectRule`) implements
  ``check_project`` and sees every parsed module at once
  (:class:`ProjectInfo`) — the scope dataflow analyses such as the
  REP010 determinism race detector need to resolve cross-module
  reachability.

Rules register themselves with the :func:`register` decorator; the
engine walks a file tree, parses every ``.py`` file once, runs the
requested rules and filters out findings suppressed with an inline

::

    offending_line()  # repro: ignore[REP001]

comment (comma-separated rule ids, or ``[*]`` to silence every rule on
that line).  A rule that *crashes* does not mask the others: its
exception is converted into a finding on its own rule id
(``rule crashed: …``) and every other rule still reports normally.
Reporters render the surviving findings as plain text, JSON or SARIF
(:mod:`repro.devtools.sarif`).  See :mod:`repro.devtools.rules` for the
domain rules themselves and :mod:`repro.devtools.lint` for the
command-line front end.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "ModuleInfo",
    "ProjectInfo",
    "Rule",
    "ProjectRule",
    "register",
    "registered_rules",
    "build_rules",
    "infer_module_name",
    "load_module",
    "lint_module",
    "lint_source",
    "lint_paths",
    "lint_project",
    "iter_python_files",
    "render_text",
    "render_json",
]

#: Rule id reserved for files the engine cannot parse at all.
PARSE_ERROR_RULE = "REP000"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]*)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule, anchored to a source line."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as a conventional ``path:line:col: RULE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class ModuleInfo:
    """One parsed module, as handed to every rule."""

    path: str
    module: Optional[str]
    is_package: bool
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, finding: Finding) -> bool:
        """True when an inline comment silences *finding* on its line."""
        rules = self.suppressions.get(finding.line)
        if rules is None:
            return False
        return finding.rule in rules or "*" in rules


@dataclass
class ProjectInfo:
    """Every parsed module of one lint invocation, for project rules.

    ``modules`` preserves the deterministic (path-sorted) collection
    order; ``by_name`` indexes the subset with an inferred dotted module
    name so project rules can resolve ``from repro.x import y`` edges.
    """

    modules: List[ModuleInfo] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.by_name: Dict[str, ModuleInfo] = {
            m.module: m for m in self.modules if m.module is not None
        }
        self.by_path: Dict[str, ModuleInfo] = {m.path: m for m in self.modules}


class Rule:
    """Base class for module-scoped lint rules.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check`; the :meth:`finding` helper anchors a message to an
    AST node.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield every violation of this rule found in *module*."""
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: Optional[ast.AST], message: str
    ) -> Finding:
        """Build a :class:`Finding` at *node* (or line 1 when node is None)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            path=module.path, line=line, col=col, rule=self.rule_id, message=message
        )


class ProjectRule(Rule):
    """Base class for project-scoped rules (whole-tree analyses).

    The engine calls :meth:`check_project` exactly once per lint run
    with every parsed module; :meth:`check` is never invoked.  Findings
    still anchor to individual modules via the inherited
    :meth:`~Rule.finding` helper.
    """

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Project rules are driven through :meth:`check_project`."""
        return iter(())

    def check_project(self, project: ProjectInfo) -> Iterator[Finding]:
        """Yield every violation found across *project*."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_cls* to the global rule registry."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"{rule_cls.__name__} must set a non-empty rule_id")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def registered_rules() -> List[Type[Rule]]:
    """Every registered rule class, ordered by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def build_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules, optionally restricted to *only*."""
    if only is None:
        return [cls() for cls in registered_rules()]
    unknown = sorted(set(only) - set(_REGISTRY))
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown rule id(s) {unknown}; known rules: {known}")
    return [_REGISTRY[rule_id]() for rule_id in sorted(set(only))]


def _scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids silenced by ``# repro: ignore[...]``."""
    table: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {token.strip() for token in match.group(1).split(",")}
        rules.discard("")
        if rules:
            table[lineno] = rules
    return table


def infer_module_name(path: str) -> Tuple[Optional[str], bool]:
    """Infer ``(dotted module name, is_package)`` from a file path.

    The dotted name is rooted at the innermost directory named ``repro``
    so that both ``src/repro/sim/engine.py`` (checkout layout) and an
    installed ``.../site-packages/repro/sim/engine.py`` resolve to
    ``repro.sim.engine``.  Files outside a ``repro`` tree get ``None``
    (module-identity rules such as layering are skipped for them).
    """
    parts = Path(path).parts
    stem = Path(path).stem
    is_package = stem == "__init__"
    dir_parts = list(parts[:-1])
    if "repro" not in dir_parts:
        return None, is_package
    idx = len(dir_parts) - 1 - dir_parts[::-1].index("repro")
    mod_parts = dir_parts[idx:]
    if not is_package:
        mod_parts = mod_parts + [stem]
    return ".".join(mod_parts), is_package


def load_module(path: str, module: Optional[str] = None) -> ModuleInfo:
    """Read and parse one file into a :class:`ModuleInfo`.

    Raises :class:`SyntaxError` when the file does not parse; callers
    that want a diagnostic instead use :func:`lint_paths`.
    """
    source = Path(path).read_text(encoding="utf-8")
    inferred, is_package = infer_module_name(path)
    return ModuleInfo(
        path=str(path),
        module=module if module is not None else inferred,
        is_package=is_package,
        source=source,
        tree=ast.parse(source, filename=str(path)),
        suppressions=_scan_suppressions(source),
    )


def _collect_safely(
    rule: Rule, iterator_factory: Callable[[], Iterator[Finding]], crash_path: str
) -> List[Finding]:
    """Drain one rule's finding iterator, isolating any crash.

    A rule that raises — at call time or mid-iteration — contributes the
    findings it produced so far plus one synthetic ``rule crashed``
    finding on its own id, and the remaining rules run untouched.  One
    broken rule must never mask another rule's findings.
    """
    collected: List[Finding] = []
    try:
        for finding in iterator_factory():
            collected.append(finding)
    except Exception as exc:  # noqa: BLE001 - the isolation point by design
        collected.append(
            Finding(
                path=crash_path,
                line=1,
                col=0,
                rule=rule.rule_id or "REP000",
                message=(
                    f"rule crashed: {type(exc).__name__}: {exc} "
                    "(findings from this rule may be incomplete)"
                ),
            )
        )
    return collected


def lint_project(
    project: ProjectInfo, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the (selected) rules over every module of *project*.

    Module rules run once per module; project rules run once with the
    whole project.  Suppression comments are honoured per the module a
    finding lands in, and every rule is crash-isolated.
    """
    raw: List[Finding] = []
    crash_path = project.modules[0].path if project.modules else "<project>"
    for rule in build_rules(rules):
        if isinstance(rule, ProjectRule):
            raw.extend(
                _collect_safely(
                    rule, lambda r=rule: r.check_project(project), crash_path
                )
            )
        else:
            for module in project.modules:
                raw.extend(
                    _collect_safely(
                        rule, lambda r=rule, m=module: r.check(m), module.path
                    )
                )
    findings: List[Finding] = []
    for finding in raw:
        owner = project.by_path.get(finding.path)
        if owner is not None and owner.suppressed(finding):
            continue
        findings.append(finding)
    return sorted(findings)


def lint_module(
    module: ModuleInfo, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the (selected) rules over one parsed module.

    Project rules see a single-module project, so cross-module analyses
    degrade gracefully to their intra-module subset here.
    """
    return lint_project(ProjectInfo(modules=[module]), rules)


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: Optional[str] = None,
    is_package: bool = False,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a source string directly (the unit-test entry point).

    *module* supplies the dotted module identity used by module-aware
    rules (layering), letting tests lint snippets "as if" they lived at
    an arbitrary spot in the package.
    """
    info = ModuleInfo(
        path=path,
        module=module,
        is_package=is_package,
        source=source,
        tree=ast.parse(source, filename=path),
        suppressions=_scan_suppressions(source),
    )
    return lint_project(ProjectInfo(modules=[info]), rules)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    out: List[str] = []
    seen: Set[str] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                out.append(key)
    return out


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under *paths*.

    All parseable modules are collected into one :class:`ProjectInfo`
    (so project rules see the whole tree); unparseable files become
    :data:`PARSE_ERROR_RULE` findings rather than exceptions.
    """
    findings: List[Finding] = []
    modules: List[ModuleInfo] = []
    for path in iter_python_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"syntax error: {exc.msg}",
                )
            )
    findings.extend(lint_project(ProjectInfo(modules=modules), rules))
    return sorted(findings)


def render_text(findings: Sequence[Finding]) -> str:
    """Plain-text report: one ``path:line:col: RULE message`` per line."""
    lines = [finding.format() for finding in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """JSON report: ``{"count": N, "findings": [...]}``."""
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
