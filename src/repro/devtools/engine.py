"""Rule-engine core for the :mod:`repro.devtools` static-analysis suite.

The engine is deliberately tiny and dependency-free (stdlib :mod:`ast`
only): a *rule* is a class with a ``rule_id`` and a ``check`` method
that yields :class:`Finding` objects for one parsed module.  Rules
register themselves with the :func:`register` decorator; the engine
walks a file tree, parses every ``.py`` file once, runs the requested
rules and filters out findings suppressed with an inline

::

    offending_line()  # repro: ignore[REP001]

comment (comma-separated rule ids, or ``[*]`` to silence every rule on
that line).  Reporters render the surviving findings as plain text or
JSON.  See :mod:`repro.devtools.rules` for the domain rules themselves
and :mod:`repro.devtools.lint` for the command-line front end.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "register",
    "registered_rules",
    "build_rules",
    "infer_module_name",
    "load_module",
    "lint_module",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "render_text",
    "render_json",
]

#: Rule id reserved for files the engine cannot parse at all.
PARSE_ERROR_RULE = "REP000"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]*)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule, anchored to a source line."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as a conventional ``path:line:col: RULE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class ModuleInfo:
    """One parsed module, as handed to every rule."""

    path: str
    module: Optional[str]
    is_package: bool
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, finding: Finding) -> bool:
        """True when an inline comment silences *finding* on its line."""
        rules = self.suppressions.get(finding.line)
        if rules is None:
            return False
        return finding.rule in rules or "*" in rules


class Rule:
    """Base class for all lint rules.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check`; the :meth:`finding` helper anchors a message to an
    AST node.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield every violation of this rule found in *module*."""
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: Optional[ast.AST], message: str
    ) -> Finding:
        """Build a :class:`Finding` at *node* (or line 1 when node is None)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            path=module.path, line=line, col=col, rule=self.rule_id, message=message
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_cls* to the global rule registry."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"{rule_cls.__name__} must set a non-empty rule_id")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def registered_rules() -> List[Type[Rule]]:
    """Every registered rule class, ordered by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def build_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules, optionally restricted to *only*."""
    if only is None:
        return [cls() for cls in registered_rules()]
    unknown = sorted(set(only) - set(_REGISTRY))
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown rule id(s) {unknown}; known rules: {known}")
    return [_REGISTRY[rule_id]() for rule_id in sorted(set(only))]


def _scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids silenced by ``# repro: ignore[...]``."""
    table: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {token.strip() for token in match.group(1).split(",")}
        rules.discard("")
        if rules:
            table[lineno] = rules
    return table


def infer_module_name(path: str) -> Tuple[Optional[str], bool]:
    """Infer ``(dotted module name, is_package)`` from a file path.

    The dotted name is rooted at the innermost directory named ``repro``
    so that both ``src/repro/sim/engine.py`` (checkout layout) and an
    installed ``.../site-packages/repro/sim/engine.py`` resolve to
    ``repro.sim.engine``.  Files outside a ``repro`` tree get ``None``
    (module-identity rules such as layering are skipped for them).
    """
    parts = Path(path).parts
    stem = Path(path).stem
    is_package = stem == "__init__"
    dir_parts = list(parts[:-1])
    if "repro" not in dir_parts:
        return None, is_package
    idx = len(dir_parts) - 1 - dir_parts[::-1].index("repro")
    mod_parts = dir_parts[idx:]
    if not is_package:
        mod_parts = mod_parts + [stem]
    return ".".join(mod_parts), is_package


def load_module(path: str, module: Optional[str] = None) -> ModuleInfo:
    """Read and parse one file into a :class:`ModuleInfo`.

    Raises :class:`SyntaxError` when the file does not parse; callers
    that want a diagnostic instead use :func:`lint_paths`.
    """
    source = Path(path).read_text(encoding="utf-8")
    inferred, is_package = infer_module_name(path)
    return ModuleInfo(
        path=str(path),
        module=module if module is not None else inferred,
        is_package=is_package,
        source=source,
        tree=ast.parse(source, filename=str(path)),
        suppressions=_scan_suppressions(source),
    )


def lint_module(
    module: ModuleInfo, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the (selected) rules over one parsed module."""
    findings: List[Finding] = []
    for rule in build_rules(rules):
        for finding in rule.check(module):
            if not module.suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: Optional[str] = None,
    is_package: bool = False,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a source string directly (the unit-test entry point).

    *module* supplies the dotted module identity used by module-aware
    rules (layering), letting tests lint snippets "as if" they lived at
    an arbitrary spot in the package.
    """
    info = ModuleInfo(
        path=path,
        module=module,
        is_package=is_package,
        source=source,
        tree=ast.parse(source, filename=path),
        suppressions=_scan_suppressions(source),
    )
    return lint_module(info, rules)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    out: List[str] = []
    seen: Set[str] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                out.append(key)
    return out


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under *paths*; unparseable files become
    :data:`PARSE_ERROR_RULE` findings rather than exceptions."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            info = load_module(path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        findings.extend(lint_module(info, rules))
    return sorted(findings)


def render_text(findings: Sequence[Finding]) -> str:
    """Plain-text report: one ``path:line:col: RULE message`` per line."""
    lines = [finding.format() for finding in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """JSON report: ``{"count": N, "findings": [...]}``."""
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
