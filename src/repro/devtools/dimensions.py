"""Unit-dimension algebra for the REP009 dataflow rule.

The simulator's headline numbers are arithmetic over a handful of
physical dimensions — power (W), energy (J/Wh), time (s), frequency
(Hz), request rate (rps) — plus dimensionless fractions.  This module
is the *data* half of the REP009 analysis: it maps identifier spellings
to dimensions and defines how dimensions combine under ``*`` and ``/``
(the ``W × s → Wh``-class rules).  The *dataflow* half — the abstract
interpreter that propagates these dimensions through function bodies —
lives in :mod:`repro.devtools.dataflow`.

Design rule: the algebra is deliberately partial.  Any combination not
listed below evaluates to :data:`UNKNOWN`, and UNKNOWN never produces a
finding — a lint that guesses units is worse than one that abstains.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional, Tuple

__all__ = [
    "POWER",
    "ENERGY",
    "TIME",
    "FREQUENCY",
    "RATE",
    "DIMENSIONLESS",
    "UNKNOWN",
    "SUFFIX_DIMENSIONS",
    "DIMENSIONLESS_SUFFIXES",
    "MUL_TABLE",
    "DIV_TABLE",
    "dimension_of_name",
    "dimension_of_annotation",
    "combine_mul",
    "combine_div",
]

# Dimensions are interned strings: cheap to compare, readable in
# findings, and trivially JSON-safe for reports.
POWER = "power"  # repro: ignore[REP003] — dimension *names*, not quantities
ENERGY = "energy"  # repro: ignore[REP003]
TIME = "time"  # repro: ignore[REP003]
FREQUENCY = "frequency"  # repro: ignore[REP003]
RATE = "rate"
DIMENSIONLESS = "dimensionless"

#: The abstain value.  ``None`` ends every inference the algebra cannot
#: justify; rules must treat it as "no opinion", never as a finding.
UNKNOWN: Optional[str] = None

#: Identifier suffix -> dimension.  The spelling source of truth is the
#: REP003 suffix list; every suffix there maps to exactly one dimension.
SUFFIX_DIMENSIONS: Dict[str, str] = {
    "_w": POWER,
    "_kw": POWER,
    "_mw": POWER,
    "_wh": ENERGY,
    "_kwh": ENERGY,
    "_j": ENERGY,
    "_kj": ENERGY,
    "_s": TIME,
    "_ms": TIME,
    "_us": TIME,
    "_ns": TIME,
    "_hz": FREQUENCY,
    "_khz": FREQUENCY,
    "_mhz": FREQUENCY,
    "_ghz": FREQUENCY,
    "_rps": RATE,
}

#: Suffixes that mark an explicitly dimensionless quantity.  These are
#: inferred *only* as whole-word suffixes (``utilization_fraction``),
#: so e.g. ``scale_factor`` participates in mixed-add checks.
DIMENSIONLESS_SUFFIXES: FrozenSet[str] = frozenset(
    {"_fraction", "_ratio", "_factor", "_frac", "_pct", "_percent"}
)

#: Symmetric multiplication table: ``(a, b) -> a*b``.  Only pairs whose
#: product has a *defined* dimension in the simulator's vocabulary are
#: listed; everything else multiplies to UNKNOWN.
MUL_TABLE: Dict[Tuple[str, str], str] = {
    (POWER, TIME): ENERGY,  # W × s → J (the Wh-class rule)
    (RATE, TIME): DIMENSIONLESS,  # rps × s → requests (a count)
    (FREQUENCY, TIME): DIMENSIONLESS,  # Hz × s → cycles (a count)
}

#: Division table: ``(numerator, denominator) -> numerator/denominator``.
DIV_TABLE: Dict[Tuple[str, str], str] = {
    (ENERGY, TIME): POWER,  # J / s → W
    (ENERGY, POWER): TIME,  # J / W → s
    (DIMENSIONLESS, TIME): RATE,  # count / s → rps-class rate
    (DIMENSIONLESS, RATE): TIME,  # count / rps → s
}


def dimension_of_name(name: str) -> Optional[str]:
    """Dimension implied by an identifier's unit suffix (or UNKNOWN).

    ``peak_power_w`` → power; ``window_s`` → time; ``headroom_fraction``
    → dimensionless; ``count`` → UNKNOWN.  Matching is case-insensitive
    and longest-suffix-first so ``_rps`` wins over ``_s``.
    """
    lowered = name.lower()
    best: Optional[str] = UNKNOWN
    best_len = 0
    for suffix, dimension in SUFFIX_DIMENSIONS.items():
        if lowered.endswith(suffix) and len(suffix) > best_len:
            best, best_len = dimension, len(suffix)
    for suffix in DIMENSIONLESS_SUFFIXES:
        if lowered.endswith(suffix) and len(suffix) > best_len:
            best, best_len = DIMENSIONLESS, len(suffix)
    return best


def dimension_of_annotation(annotation: Optional[ast.AST]) -> Optional[str]:
    """Dimension implied by a type annotation, when it names one.

    Supports the documentation idiom ``x: "Watts"``-style string
    annotations and ``Annotated[float, "power_w"]``-style unit tags by
    reading any string constant inside the annotation through
    :func:`dimension_of_name`.  Plain ``float``/``int`` annotations give
    UNKNOWN.
    """
    if annotation is None:
        return UNKNOWN
    for node in ast.walk(annotation):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            dimension = dimension_of_name(node.value)
            if dimension is not UNKNOWN:
                return dimension
    return UNKNOWN


def combine_mul(left: Optional[str], right: Optional[str]) -> Optional[str]:
    """Dimension of ``left * right`` (UNKNOWN when the table abstains)."""
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    if left == DIMENSIONLESS:
        return right
    if right == DIMENSIONLESS:
        return left
    return MUL_TABLE.get((left, right)) or MUL_TABLE.get((right, left))


def combine_div(left: Optional[str], right: Optional[str]) -> Optional[str]:
    """Dimension of ``left / right`` (UNKNOWN when the table abstains)."""
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    if right == DIMENSIONLESS:
        return left
    if left == right:
        return DIMENSIONLESS
    return DIV_TABLE.get((left, right))
