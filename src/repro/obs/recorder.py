"""The counters + timers bundle threaded through a simulation.

One :class:`Recorder` travels with one :class:`~repro.sim.engine.
EventEngine` (the engine constructs a fresh one unless handed a shared
instance), so every component that can reach the engine — servers,
schemes, the NLB, the meter — records into the same two tables without
any global state.  Benches that span several simulations create one
recorder per phase and fold the counter tables together with
:meth:`~repro.obs.counters.Counters.merge`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .counters import Counters
from .timers import WallTimers

__all__ = ["Recorder"]


class Recorder:
    """One observation context: deterministic counters + wall timers.

    Parameters
    ----------
    timer_clock:
        Optional wall-clock override forwarded to :class:`WallTimers`
        (tests inject a fake clock; production uses the default).
    """

    __slots__ = ("counters", "timers")

    def __init__(self, timer_clock: Optional[Callable[[], float]] = None) -> None:
        self.counters = Counters()
        self.timers = WallTimers(timer_clock)

    def snapshot(self) -> Dict[str, object]:
        """Both tables, keeping the determinism boundary explicit.

        ``"counters"`` is deterministic output; ``"timings_s"`` is wall
        clock and must never feed a reproducibility hash.
        """
        return {
            "counters": self.counters.as_dict(),
            "timings_s": self.timers.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Recorder(counters={len(self.counters)}, "
            f"timers={len(self.timers)})"
        )
