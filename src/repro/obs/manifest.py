"""Run manifests and the BENCH JSON contract.

A :class:`RunManifest` is the machine-readable record of one simulation
or bench run: *what* ran (config hash, seed, package version, name) and
*what happened* (the deterministic counter table), with the wall-clock
timings carried alongside but **outside** the deterministic hash.  The
split is the layer's central invariant:

* :meth:`RunManifest.deterministic_payload` — everything two same-seed
  runs must agree on, byte for byte;
* :meth:`RunManifest.deterministic_hash` — SHA-256 of that payload's
  canonical JSON, the value regression gates compare;
* ``timings_s`` / ``derived`` — wall-clock measurements (throughput,
  per-phase seconds) that vary run to run and machine to machine.

:func:`validate_bench_payload` is the schema check for the
``BENCH_<name>.json`` documents ``python -m repro bench`` emits — a
hand-rolled validator so a bare install needs no schema dependency.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from .._validation import check_int
from .._version import __version__
from .contract import is_execution_counter

__all__ = [
    "RunManifest",
    "config_hash",
    "deterministic_hash",
    "validate_bench_payload",
    "BENCH_SCHEMA_ID",
]

#: Identifier stamped into every bench document this version emits.
BENCH_SCHEMA_ID = "repro-bench/1"

Number = Union[int, float]


def _canonical_json(value: object) -> str:
    """Sorted-key, compact JSON — the hashed byte form."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def deterministic_hash(payload: Mapping[str, object]) -> str:
    """SHA-256 hex digest of *payload*'s canonical JSON."""
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def config_hash(config_dict: Mapping[str, object]) -> str:
    """Stable fingerprint of a configuration mapping.

    Takes the JSON-ready form (:meth:`repro.sim.config.SimulationConfig.
    to_dict`) so enum members are already reduced to names.
    """
    return deterministic_hash(dict(config_dict))


@dataclass
class RunManifest:
    """Structured record of one run.

    Parameters
    ----------
    name:
        Human-readable run label (``"smoke"``, ``"fig11"``, …).
    seed:
        Master RNG seed of the run.
    config_hash:
        Fingerprint of the driving configuration (:func:`config_hash`).
    counters:
        Deterministic counter table (:meth:`~repro.obs.counters.
        Counters.as_dict`).
    timings_s:
        Wall-clock phase table (:meth:`~repro.obs.timers.WallTimers.
        as_dict`) — excluded from the deterministic hash.
    version:
        Package version that produced the run.
    """

    name: str
    seed: int
    config_hash: str
    counters: Dict[str, Number] = field(default_factory=dict)
    timings_s: Dict[str, Dict[str, float]] = field(default_factory=dict)
    version: str = __version__

    def __post_init__(self) -> None:
        check_int("seed", self.seed, minimum=0)

    def deterministic_payload(self) -> Dict[str, object]:
        """The reproducible part: identity plus counters, no wall clock.

        Execution counters (``repro.obs.contract.
        EXECUTION_COUNTER_NAMES``) are filtered out alongside the wall
        timings: like wall clock, they describe how the run was
        computed — the scalar and batched engines legitimately disagree
        on them while agreeing byte-for-byte on everything kept here.
        """
        return {
            "name": self.name,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "version": self.version,
            "counters": {
                name: value
                for name, value in self.counters.items()
                if not is_execution_counter(name)
            },
        }

    def deterministic_hash(self) -> str:
        """Hash two same-seed runs must agree on (timings excluded)."""
        return deterministic_hash(self.deterministic_payload())

    def to_dict(self) -> Dict[str, object]:
        """Full JSON-ready document (deterministic part + timings).

        Unlike :meth:`deterministic_payload`, the document keeps the
        complete counter table — execution counters are telemetry worth
        exporting even though the hash ignores them.
        """
        out = self.deterministic_payload()
        out["counters"] = dict(self.counters)
        out["timings_s"] = dict(self.timings_s)
        out["deterministic_hash"] = self.deterministic_hash()
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise to JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunManifest":
        """Inverse of :meth:`to_dict`; verifies the embedded hash."""
        manifest = cls(
            name=str(data["name"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            config_hash=str(data["config_hash"]),
            counters=dict(data.get("counters", {})),  # type: ignore[arg-type]
            timings_s=dict(data.get("timings_s", {})),  # type: ignore[arg-type]
            version=str(data.get("version", __version__)),
        )
        stored = data.get("deterministic_hash")
        if stored is not None and stored != manifest.deterministic_hash():
            raise ValueError(
                "manifest deterministic_hash mismatch: stored "
                f"{stored!r} != recomputed {manifest.deterministic_hash()!r}"
            )
        return manifest

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Parse a :meth:`to_json` document."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# BENCH_<name>.json schema
# ----------------------------------------------------------------------

#: Required top-level keys of a bench document and their types.
_BENCH_REQUIRED = {
    "schema": str,
    "name": str,
    "mode": str,
    "version": str,
    "seed": int,
    "config_hash": str,
    "headline": dict,
    "counters": dict,
    "timings_s": dict,
    "derived": dict,
    "phases": list,
}

#: Required keys of the headline block.
_HEADLINE_REQUIRED = ("metric", "value")

#: Derived metrics every bench document must report.
_DERIVED_REQUIRED = (
    "events_per_wall_s",
    "sim_time_per_wall_s",
    "runner_cache_hit_rate",
)


def validate_bench_payload(payload: object) -> List[str]:
    """Validate a bench document; return a list of problems (empty = ok).

    Checks structure, types, the schema id, headline consistency, and
    the determinism boundary (counters numeric, timing entries shaped
    ``{"total_s": float, "count": int}``).
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"bench payload must be a JSON object, got {type(payload).__name__}"]
    for key, expected in _BENCH_REQUIRED.items():
        if key not in payload:
            problems.append(f"missing required key {key!r}")
        elif expected is int:
            if isinstance(payload[key], bool) or not isinstance(payload[key], int):
                problems.append(f"key {key!r} must be an int")
        elif not isinstance(payload[key], expected):
            problems.append(f"key {key!r} must be {expected.__name__}")
    if problems:
        return problems

    if payload["schema"] != BENCH_SCHEMA_ID:
        problems.append(
            f"schema must be {BENCH_SCHEMA_ID!r}, got {payload['schema']!r}"
        )
    if payload["mode"] not in ("smoke", "full"):
        problems.append(f"mode must be 'smoke' or 'full', got {payload['mode']!r}")

    headline = payload["headline"]
    for key in _HEADLINE_REQUIRED:
        if key not in headline:
            problems.append(f"headline missing {key!r}")
    if "value" in headline and not isinstance(headline["value"], (int, float)):
        problems.append("headline value must be numeric")
    derived = payload["derived"]
    for key in _DERIVED_REQUIRED:
        if key not in derived:
            problems.append(f"derived missing {key!r}")
        elif not isinstance(derived.get(key), (int, float)):
            problems.append(f"derived {key!r} must be numeric")
    metric = headline.get("metric")
    if metric is not None and metric not in derived:
        problems.append(f"headline metric {metric!r} not present in derived")

    for name, value in payload["counters"].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            problems.append(f"counter {name!r} must be numeric")
    for name, entry in payload["timings_s"].items():
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("total_s"), (int, float))
            or not isinstance(entry.get("count"), int)
        ):
            problems.append(
                f"timing {name!r} must be {{'total_s': number, 'count': int}}"
            )
    for index, phase in enumerate(payload["phases"]):
        if (
            not isinstance(phase, dict)
            or not isinstance(phase.get("name"), str)
            or not isinstance(phase.get("wall_s"), (int, float))
        ):
            problems.append(
                f"phases[{index}] must be {{'name': str, 'wall_s': number}}"
            )
            continue
        # Optional per-phase throughput fields (added with the tree
        # phase): when present both must be numeric, and events without
        # events_per_wall_s (or vice versa) is malformed.
        has_events = "events" in phase
        has_rate = "events_per_wall_s" in phase
        if has_events != has_rate:
            problems.append(
                f"phases[{index}] must carry 'events' and "
                "'events_per_wall_s' together or not at all"
            )
        for key in ("events", "events_per_wall_s"):
            if key in phase and (
                isinstance(phase[key], bool)
                or not isinstance(phase[key], (int, float))
            ):
                problems.append(f"phases[{index}] {key!r} must be numeric")
    return problems
