"""Deterministic named counters.

A :class:`Counters` table maps dotted counter names (``"engine.events_
dispatched"``, ``"cluster.dvfs_transitions"``) to numeric totals.  The
table is part of a run's *deterministic* output: every increment is
driven by simulation state, never by wall-clock or scheduling
accidents, so two same-seed runs — serial or parallel — produce
byte-identical tables.  Anything wall-clock-shaped belongs in
:class:`~repro.obs.timers.WallTimers` instead.

Counter values are ``int`` or ``float`` (floats appear where the
counted quantity is simulated time, e.g. ``engine.sim_time_advanced_s``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

__all__ = ["Counters"]

Number = Union[int, float]


class Counters:
    """A table of named monotonic counters.

    Increment-only by convention: nothing in the simulator decrements,
    so a counter table is a faithful event tally for the whole run.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, Number] = {}

    def inc(self, name: str, amount: Number = 1) -> None:
        """Add *amount* (default 1) to counter *name*, creating it at 0."""
        self._values[name] = self._values.get(name, 0) + amount

    def get(self, name: str) -> Number:
        """Current value of *name* (0 when never incremented)."""
        return self._values.get(name, 0)

    def merge(self, other: Union["Counters", Mapping[str, Number]]) -> None:
        """Add another counter table into this one, key by key.

        Used by the bench driver to fold per-phase or per-simulation
        recorders into one run-level table; addition is commutative, so
        the merged table is independent of merge order.
        """
        table = other.as_dict() if isinstance(other, Counters) else other
        for name, amount in table.items():
            self.inc(name, amount)

    def as_dict(self) -> Dict[str, Number]:
        """Name-sorted snapshot — the canonical serialised form."""
        return {name: self._values[name] for name in sorted(self._values)}

    def clear(self) -> None:
        """Reset every counter (fresh measurement window)."""
        self._values.clear()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({len(self._values)} names)"
