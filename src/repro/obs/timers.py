"""Segregated wall-clock phase timers.

This module is the **one** place in ``src/repro`` that reads a wall
clock.  Everything it measures is, by construction, nondeterministic —
machine speed, scheduler noise, cache temperature — so timings live in
their own table, are never mixed into counters, and are excluded from
every deterministic artifact and hash (enforced by
``tests/test_obs.py``).  REP001's wall-clock ban is deliberately
suppressed on the single line that binds the clock.

The clock is injectable so unit tests can drive timers with a fake
clock and assert exact totals.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

__all__ = ["WallTimers"]


class WallTimers:
    """Named wall-clock accumulators with phase scoping.

    Parameters
    ----------
    clock:
        Zero-argument monotonic-seconds source.  Defaults to
        ``time.perf_counter``; tests inject a fake.
    """

    __slots__ = ("_clock", "_totals_s", "_counts")

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        if clock is None:
            clock = time.perf_counter  # repro: ignore[REP001]
        self._clock = clock
        self._totals_s: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Charge the wall time of the enclosed block to *name*."""
        start_s = self._clock()
        try:
            yield
        finally:
            self.add(name, self._clock() - start_s)

    def add(self, name: str, elapsed_s: float) -> None:
        """Record *elapsed_s* wall seconds against *name*.

        Clock non-monotonicity (NTP steps on exotic clocks) is clamped
        to zero rather than corrupting the total.
        """
        if elapsed_s < 0.0:
            elapsed_s = 0.0
        self._totals_s[name] = self._totals_s.get(name, 0.0) + elapsed_s
        self._counts[name] = self._counts.get(name, 0) + 1

    def merge(self, other: "WallTimers") -> None:
        """Fold *other*'s totals and interval counts into this table."""
        for name, elapsed_s in other._totals_s.items():
            self._totals_s[name] = self._totals_s.get(name, 0.0) + elapsed_s
            self._counts[name] = self._counts.get(name, 0) + other._counts[name]

    def total_s(self, name: str) -> float:
        """Accumulated wall seconds for *name* (0.0 when never timed)."""
        return self._totals_s.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of recorded intervals for *name*."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Name-sorted snapshot: ``{name: {"total_s": …, "count": …}}``."""
        return {
            name: {
                "total_s": self._totals_s[name],
                "count": self._counts[name],
            }
            for name in sorted(self._totals_s)
        }

    def clear(self) -> None:
        """Reset every timer (fresh measurement window)."""
        self._totals_s.clear()
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._totals_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WallTimers({len(self._totals_s)} names)"
