"""Observability layer: counters, wall timers and run manifests.

The simulator's headline claims rest on measured trajectories, so the
measurement spine itself is a first-class subsystem.  ``repro.obs``
provides three small pieces, kept strictly on the right side of the
determinism boundary:

* :class:`Counters` — named monotonic counters incremented on the hot
  path (events dispatched, DVFS transitions, PDF decisions, budget
  violations, cache hits…).  Counters are **deterministic output**:
  two same-seed runs must produce identical counter tables, and the
  parallel runner must merge to the same table as a serial run.
* :class:`WallTimers` — segregated wall-clock phase timers (the only
  place in ``src/repro`` allowed to read a wall clock).  Timings are
  **excluded** from every deterministic artifact and hash; they exist
  so benches can report real throughput (events per wall-second).
* :class:`Recorder` — one counters + timers bundle threaded through a
  simulation (every :class:`~repro.sim.engine.EventEngine` owns one).
* :class:`RunManifest` — the machine-readable record of one run:
  config hash, seed, package version and the counter table, with the
  wall timings carried alongside but outside the deterministic hash.

See DESIGN.md §9 for what is counted, what is timed, and why the
boundary sits where it does.
"""

from .contract import (
    COUNTER_NAMES,
    COUNTER_PREFIXES,
    TIMER_NAMES,
    is_declared_counter,
    is_declared_timer,
)
from .counters import Counters
from .manifest import (
    BENCH_SCHEMA_ID,
    RunManifest,
    config_hash,
    deterministic_hash,
    validate_bench_payload,
)
from .recorder import Recorder
from .sanitize import jsonable
from .timers import WallTimers

__all__ = [
    "COUNTER_NAMES",
    "COUNTER_PREFIXES",
    "TIMER_NAMES",
    "is_declared_counter",
    "is_declared_timer",
    "Counters",
    "WallTimers",
    "Recorder",
    "RunManifest",
    "BENCH_SCHEMA_ID",
    "config_hash",
    "deterministic_hash",
    "jsonable",
    "validate_bench_payload",
]
