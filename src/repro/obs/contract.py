"""The observability contract: every counter and timer name, declared.

:class:`~repro.obs.counters.Counters` and
:class:`~repro.obs.timers.WallTimers` are deliberately permissive —
``inc("typo.name")`` mints a new counter and ``get("typo.name")``
reads 0, both silently.  That permissiveness is what makes a misspelled
name a *data* bug instead of a crash: the dashboard column is zero and
nothing ever says why.

This module is the fix: a central registry of every telemetry name the
simulator emits.  It is enforced twice —

* statically, by the REP011 lint rule
  (:mod:`repro.devtools.registries`), which flags any string-literal
  counter/timer name in ``src/repro`` that is not declared here;
* dynamically, by anyone who wants it: :func:`is_declared_counter` /
  :func:`is_declared_timer` are cheap enough for asserts in tests.

Adding a counter is a two-line diff by design: the ``inc()`` call and
the declaration here.  A name removed from the code should be removed
from the registry in the same PR — the registry is a contract, not an
archive.

Names with a runtime-variable tail (per-fault-kind, per-outcome) are
declared by prefix in :data:`COUNTER_PREFIXES`; the static rule checks
the literal head of the f-string against these.

A second axis splits the counters themselves: most count *model*
events (arrivals, drops, control slots) and must be byte-identical
between same-seed runs in any engine execution mode; a few count
*execution* work (cache-miss power evaluations, cohort bookkeeping)
and legitimately differ between the scalar and batched engines.  The
latter are listed in :data:`EXECUTION_COUNTER_NAMES` and excluded from
:meth:`~repro.obs.manifest.RunManifest.deterministic_payload`.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = [
    "COUNTER_NAMES",
    "COUNTER_PREFIXES",
    "EXECUTION_COUNTER_NAMES",
    "TIMER_NAMES",
    "is_declared_counter",
    "is_declared_timer",
    "is_execution_counter",
]

#: Every fixed-name counter the simulator increments or reads.
COUNTER_NAMES: FrozenSet[str] = frozenset(
    {
        # sim.engine — event loop accounting
        "engine.run_calls",
        "engine.events_dispatched",
        "engine.sim_time_advanced_s",
        "engine.cohorts_dispatched",
        "engine.cohort_requests",
        "engine.fluid_segments",
        "engine.fluid_time_advanced_s",
        # sim.cluster — server fleet lifecycle
        "cluster.power_model_evals",
        "cluster.power_model_vector_evals",
        "cluster.dvfs_transitions",
        "cluster.server_failures",
        "cluster.server_recoveries",
        "cluster.requests_lost_to_crash",
        "cluster.requests_shed_to_nlb",
        # network — NLB routing and the power-deficit firewall
        "network.nlb_rerouted",
        "network.nlb_forwarded",
        "network.nlb_retries",
        "network.pdf_suspect_forwarded",
        "network.pdf_innocent_forwarded",
        "network.pdf_failover_forwarded",
        # power — budget control loop and sensor fallbacks
        "power.control_slots",
        "power.budget_violation_slots",
        "power.battery_discharge_slots",
        "power.sensor_stale_fallbacks",
        "power.sensor_worst_case_fallbacks",
        "power.prediction_evals",
        # runner — sweep executor and cache
        "runner.cells_total",
        "runner.cells_executed",
        "runner.cache_hits",
        "runner.cache_misses",
        "runner.cell_retries",
        "runner.cell_errors",
    }
)

#: Prefixes for counter families whose tail is runtime data (a fault
#: kind, a request outcome).  A dynamic name is declared iff it starts
#: with one of these.
COUNTER_PREFIXES: FrozenSet[str] = frozenset(
    {
        "faults.injected.",
        "network.nlb_dropped.",
        # Power-tree families: the tail is a tree node name (rack0,
        # row1, feed) — violation_slots / deepest_violation_slots from
        # the topology monitor, cap_slots from per-PDU enforcement,
        # pdu_trips from node-targeted fault cascades.
        "topology.",
        # Fabric families: flows/flowlets/path_switches/failovers plus
        # per-rack forwarded.rackN tails.
        "fabric.",
        # Online-detection pipeline: arrival/completion taps, dynamic
        # suspect-pool forwarding splits, quarantine enter/exit churn,
        # warm-up slots and calibration clamping under meter faults.
        "detect.",
        # Prediction-based oversubscription: per-slot tier tallies
        # (healthy/warn/soft_cap/hard_cap) plus the blind-violation
        # slots where measured power exceeds the true supply while the
        # history forecast still reports healthy.
        "predict.",
    }
)

#: Counters that measure how the simulator *computed* a run rather
#: than what happened in it.  They vary with the engine execution mode
#: (scalar vs. batched vs. fluid) while everything else stays
#: byte-identical, so the deterministic manifest excludes them.  Still
#: full members of :data:`COUNTER_NAMES` — they appear in telemetry
#: and REP011 gates their spelling like any other name.
EXECUTION_COUNTER_NAMES: FrozenSet[str] = frozenset(
    {
        "engine.cohorts_dispatched",
        "engine.cohort_requests",
        "engine.fluid_segments",
        "engine.fluid_time_advanced_s",
        "cluster.power_model_evals",
        "cluster.power_model_vector_evals",
    }
)

#: Every wall-timer phase name.
TIMER_NAMES: FrozenSet[str] = frozenset(
    {
        "engine.run",
        "runner.run_cells",
        "runner.cell",
        "runner.pool_batch",
        "bench.attack_scenario",
        "bench.chaos_scenario",
        "bench.volume_flood",
        "bench.tree_topology",
        "bench.online_detect",
        "bench.prediction",
        "bench.region_sweep_cold",
        "bench.region_sweep_warm",
    }
)


def is_declared_counter(name: str) -> bool:
    """True when *name* is a declared counter (exact or by prefix)."""
    if name in COUNTER_NAMES:
        return True
    return any(name.startswith(prefix) for prefix in COUNTER_PREFIXES)


def is_declared_timer(name: str) -> bool:
    """True when *name* is a declared wall-timer phase."""
    return name in TIMER_NAMES


def is_execution_counter(name: str) -> bool:
    """True when *name* counts execution work, not model events.

    Execution counters are excluded from deterministic manifests — two
    same-seed runs in different engine modes may disagree on them.
    """
    return name in EXECUTION_COUNTER_NAMES
