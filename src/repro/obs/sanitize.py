"""JSON sanitisation: make result payloads strictly JSON-representable.

Latency summaries over an empty completion window carry ``NaN`` fields
(the honest in-memory representation of "no sample"), but ``NaN`` and
the infinities are **not** JSON — ``json.dump`` only emits them via a
non-standard extension that downstream parsers reject.  Every exporter
in the package therefore runs its payload through :func:`jsonable`
(non-finite floats become ``null``) and passes ``allow_nan=False`` so a
regression cannot slip through silently.
"""

from __future__ import annotations

import math
from typing import Optional, Union

__all__ = ["jsonable"]

Jsonable = Union[None, bool, int, float, str, list, tuple, dict]


def jsonable(value: Jsonable) -> Optional[Jsonable]:
    """Recursively replace non-finite floats with ``None``.

    Dicts, lists and tuples are rebuilt (tuples become lists, matching
    what ``json.dump`` would do anyway); every other value passes
    through unchanged.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return value
