"""The DOPE attacker (paper Section 4, Fig. 12).

DOPE is *adaptive*: the adversary has already profiled the victim's
endpoints offline (it knows which URLs are power-hungry) and at runtime
it walks its aggregate request rate toward the sweet spot of Fig. 11 —
high enough to violate the power budget, low enough per agent to stay
under the perimeter defence's rate threshold.  The probe-and-adjust
loop from Fig. 12:

1. start at a modest aggregate rate spread over many agents;
2. every adjustment interval, check two feedback signals an external
   attacker can actually observe:

   * **detection** — any of its agents stopped getting responses
     (banned by the firewall);
   * **effect** — its own requests' response time inflated relative to
     the baseline it measured before attacking (DVFS throttling is
     visible as victim-side slowdown);

3. if detected → multiplicative back-off of the per-agent rate (and
   optionally recruit fresh agents to hold the aggregate); if
   undetected but ineffective → additive increase; if undetected and
   effective → hold (converged).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .._validation import check_int, check_positive, require
from ..network.firewall import RateLimitFirewall
from ..network.sources import SourceRegistry
from ..sim.engine import EventEngine
from ..sim.events import PRIORITY_CONTROL
from .catalog import RequestMix, RequestType, TrafficClass, uniform_mix
from .generator import ClosedLoopGenerator, Dispatch, clients_for_rate

__all__ = [
    "ATTACK_MODES",
    "AttackerState",
    "DopeAdjustment",
    "DopeStats",
    "DopeAttacker",
]


class AttackerState(enum.Enum):
    """Phase of the Fig. 12 loop."""

    PROBING = "probing"
    BACKING_OFF = "backing_off"
    CONVERGED = "converged"
    #: Predictor-poison mode only: the quiet low-draw phase that walks
    #: the victim's power-history percentile (and its decaying max
    #: floor) down before the synchronized flood.
    SHAPING = "shaping"


#: Attacker behaviour modes (``DopeAttacker(mode=...)``).
ATTACK_MODES: tuple = ("classic", "predictor-poison")


@dataclass
class DopeAdjustment:
    """One decision of the adaptive loop (for the Fig. 12 bench)."""

    time_s: float
    rate_rps: float
    num_agents: int
    detected: bool
    effective: bool
    state: AttackerState
    #: True when the victim's *online detector* (not the firewall) had
    #: the attacker's sources quarantined at decision time.
    quarantined: bool = False
    #: Fraction of the attack mix diluted toward benign-looking traffic
    #: to evade behavioural scoring (0.0 = pure attack mix).
    dilution: float = 0.0


@dataclass
class DopeStats:
    """Loop history and summary."""

    adjustments: List[DopeAdjustment] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """Whether the attacker reached a stable effective rate."""
        return bool(
            self.adjustments
            and self.adjustments[-1].state is AttackerState.CONVERGED
        )

    @property
    def final_rate(self) -> float:
        """Aggregate rate after the last adjustment."""
        return self.adjustments[-1].rate_rps if self.adjustments else 0.0


class DopeAttacker:
    """Adaptive low-rate / high-power attacker.

    Parameters
    ----------
    engine, dispatch, registry, rng:
        Simulation wiring.
    target_mix:
        What to request — defaults to the high-power victim types the
        offline profiling step would select.
    initial_rate_rps:
        Opening aggregate rate.
    rate_step_rps:
        Additive increase applied while undetected but ineffective.
    max_rate_rps:
        Upper bound of the probe (botnet capacity).
    num_agents:
        Recruited agents; per-agent rate is ``rate / agents``.
    adjust_interval_s:
        Seconds between Fig. 12 loop iterations.
    effect_signal:
        Zero-argument callable returning True when the attack is
        currently effective (e.g. attack-request latency inflated, or a
        power-oracle for region sweeps).  Defaults to never-effective,
        which makes the attacker ramp to ``max_rate_rps``.
    detection_signal:
        Zero-argument callable returning True when the attacker notices
        it is being filtered.  Defaults to checking the firewall ban
        list for its own agents when a firewall is supplied.
    backoff_factor:
        Multiplicative rate decrease on detection.
    rotate_on_detection:
        Botnet-master behaviour: when agents are banned, recruit a
        fresh pool of the same size instead of only backing off — the
        banned identities are burned, the attack continues from new
        ones.  Each rotation allocates a new source block from the
        registry.
    quarantine_signal:
        Zero-argument callable returning True when the attacker infers
        its sources are quarantined by an *online detector* (e.g. its
        requests land on the slow suspect pool — latency degradation it
        can measure externally).  Defaults to never-quarantined, which
        keeps the classic Fig. 12 loop byte-identical.
    dilution_step:
        Evasion knob: per-adjustment increase of the benign-mix dilution
        applied while quarantined.  Diluting toward the benign mix
        lowers the attacker's entropy/power anomaly at the cost of
        attack potency (a diluted request stream burns less power per
        request).  ``0.0`` (default) disables evasion.
    max_dilution:
        Ceiling on the dilution fraction; at least one request in
        ``1/(1-max_dilution)`` stays on the attack mix.
    dilution_mix:
        Benign-looking mix to dilute toward; defaults to the uniform
        all-types catalog mix (what a normal user population requests).
    mode:
        ``"classic"`` (default) runs the Fig. 12 probe-and-adjust loop
        unchanged.  ``"predictor-poison"`` targets a history-driven
        victim (the ``prediction`` scheme): for ``poison_duration_s``
        after launch the attacker *shapes* — it presents only
        ``shaping_rate_rps`` of the light ``shaping_mix``, depressing
        the victim's power-history percentile and letting its decaying
        observed-max floor fade — and then fires a synchronized flood
        of the full attack mix at ``max_rate_rps`` into the inflated
        headroom the poisoned forecast granted.  After the flood fires
        the classic adaptive loop resumes.
    poison_duration_s:
        Length of the shaping phase (should exceed the victim
        predictor's history horizon to fully fade the max floor).
    shaping_rate_rps:
        Aggregate rate presented while shaping (low — the point is a
        quiet history, not damage).
    shaping_mix:
        Request mix of the shaping phase; defaults to the lightest EC
        endpoint (text retrieval) so per-request power stays minimal.
    """

    def __init__(
        self,
        engine: EventEngine,
        dispatch: Dispatch,
        registry: SourceRegistry,
        rng: np.random.Generator,
        target_mix: Optional[RequestMix] = None,
        initial_rate_rps: float = 50.0,
        rate_step_rps: float = 50.0,
        max_rate_rps: float = 2000.0,
        num_agents: int = 50,
        adjust_interval_s: float = 20.0,
        effect_signal: Optional[Callable[[], bool]] = None,
        detection_signal: Optional[Callable[[], bool]] = None,
        firewall: Optional[RateLimitFirewall] = None,
        backoff_factor: float = 0.7,
        rotate_on_detection: bool = False,
        label: str = "dope",
        quarantine_signal: Optional[Callable[[], bool]] = None,
        dilution_step: float = 0.0,
        max_dilution: float = 0.8,
        dilution_mix: Optional[RequestMix] = None,
        mode: str = "classic",
        poison_duration_s: float = 120.0,
        shaping_rate_rps: float = 20.0,
        shaping_mix: Optional[RequestMix] = None,
    ) -> None:
        from .catalog import ALL_TYPES, COLLA_FILT, K_MEANS, TEXT_CONT, WORD_COUNT

        check_positive("initial_rate_rps", initial_rate_rps)
        check_positive("rate_step_rps", rate_step_rps)
        check_positive("max_rate_rps", max_rate_rps)
        require(max_rate_rps >= initial_rate_rps, "max_rate must be >= initial_rate")
        check_int("num_agents", num_agents, minimum=1)
        check_positive("adjust_interval_s", adjust_interval_s)
        if not 0.0 < backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be in (0,1), got {backoff_factor}")
        if not 0.0 <= dilution_step <= 1.0:
            raise ValueError(
                f"dilution_step must be in [0,1], got {dilution_step}"
            )
        if not 0.0 <= max_dilution < 1.0:
            raise ValueError(
                f"max_dilution must be in [0,1), got {max_dilution}"
            )
        require(
            mode in ATTACK_MODES,
            f"mode must be one of {ATTACK_MODES}, got {mode!r}",
        )
        check_positive("poison_duration_s", poison_duration_s)
        check_positive("shaping_rate_rps", shaping_rate_rps)

        self.engine = engine
        self.rng = rng
        self.rate_rps = float(initial_rate_rps)
        self.rate_step_rps = float(rate_step_rps)
        self.max_rate_rps = float(max_rate_rps)
        self.adjust_interval_s = float(adjust_interval_s)
        self.backoff_factor = float(backoff_factor)
        self.firewall = firewall
        self.effect_signal = effect_signal or (lambda: False)
        self.detection_signal = detection_signal or self._firewall_detection
        self.rotate_on_detection = rotate_on_detection
        self.rotations = 0
        self._registry = registry
        self._label = label
        self.state = AttackerState.PROBING
        self.stats = DopeStats()

        self.quarantine_signal = quarantine_signal or (lambda: False)
        self.dilution_step = float(dilution_step)
        self.max_dilution = float(max_dilution)
        self.dilution = 0.0

        pool = registry.allocate(label, TrafficClass.ATTACK, num_agents)
        self.pool = pool
        mix = target_mix or uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))
        self.target_mix = mix
        self.dilution_mix = dilution_mix or uniform_mix(ALL_TYPES)
        self.mode = mode
        self.poison_duration_s = float(poison_duration_s)
        self.shaping_rate_rps = float(shaping_rate_rps)
        self.shaping_mix = shaping_mix or uniform_mix((TEXT_CONT,))
        #: Simulated time at which a poison-mode flood fires; ``None``
        #: in classic mode and after the flood has been released.
        self._flood_at_s: Optional[float] = None
        self.think_s = 0.2
        if self.mode == "predictor-poison":
            # Open quietly: the shaping stream *is* the first phase.
            self.rate_rps = self.shaping_rate_rps
            mix = self.shaping_mix
        # The attack tools are closed-loop (fixed concurrency); the
        # attacker's "rate" knob maps onto the client-pool size.
        self.generator = ClosedLoopGenerator(
            engine=engine,
            dispatch=dispatch,
            rng=rng,
            source_pool=pool,
            mix=mix,
            num_clients=clients_for_rate(self.rate_rps, mix, self.think_s),
            think_s=self.think_s,
            label=label,
        )
        self._stop_loop: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, delay_s: float = 0.0) -> None:
        """Launch the flood and the adjustment loop."""
        if self.mode == "predictor-poison":
            self._flood_at_s = (
                self.engine.now + delay_s + self.poison_duration_s
            )
        self.generator.start(delay_s)
        self._stop_loop = self.engine.every(
            self.adjust_interval_s,
            self._adjust,
            priority=PRIORITY_CONTROL,
            start_delay_s=delay_s + self.adjust_interval_s,
        )

    def stop(self) -> None:
        """Cease fire."""
        self.generator.stop()
        if self._stop_loop is not None:
            self._stop_loop()
            self._stop_loop = None

    @property
    def per_agent_rate(self) -> float:
        """Rate each agent presents to the firewall."""
        return self.rate_rps / self.pool.size

    # ------------------------------------------------------------------
    # Fig. 12 loop
    # ------------------------------------------------------------------
    def _firewall_detection(self) -> bool:
        if self.firewall is None:
            return False
        banned = self.firewall.banned_sources()
        return any(self.pool.contains(s) for s in banned)

    def rotate_agents(self) -> None:
        """Recruit a fresh agent pool (burned identities abandoned)."""
        self.rotations += 1
        pool = self._registry.allocate(
            f"{self._label}-gen{self.rotations}",
            TrafficClass.ATTACK,
            self.pool.size,
        )
        self.pool = pool
        self.generator.source_pool = pool

    def _blended_mix(self) -> RequestMix:
        """Attack mix diluted toward the benign mix by ``self.dilution``."""
        if self.dilution <= 0.0:
            return self.target_mix
        weights: dict = {}
        for rtype, weight in zip(self.target_mix.types, self.target_mix.weights):
            weights[rtype] = weights.get(rtype, 0.0) + weight * (
                1.0 - self.dilution
            )
        for rtype, weight in zip(
            self.dilution_mix.types, self.dilution_mix.weights
        ):
            weights[rtype] = weights.get(rtype, 0.0) + weight * self.dilution
        return RequestMix(weights)

    def _record(self, detected: bool, effective: bool, quarantined: bool) -> None:
        """Append one loop decision to the Fig. 12 trace."""
        self.stats.adjustments.append(
            DopeAdjustment(
                time_s=self.engine.now,
                rate_rps=self.rate_rps,
                num_agents=self.pool.size,
                detected=detected,
                effective=effective,
                state=self.state,
                quarantined=quarantined,
                dilution=self.dilution,
            )
        )

    def _poison_phase_adjust(
        self, detected: bool, effective: bool, quarantined: bool
    ) -> bool:
        """Poison-mode phase machine; True while it owns the decision.

        Before the flood instant the attacker only *shapes* (holds the
        quiet low-draw stream — no probing, nothing for the victim's
        history to remember).  At the flood instant it swaps the
        generator onto the full attack mix at botnet capacity in one
        synchronized step, then hands control back to the classic
        loop for subsequent adjustments.
        """
        if self._flood_at_s is None:
            return False
        if self.engine.now < self._flood_at_s:
            self.state = AttackerState.SHAPING
            self._record(detected, effective, quarantined)
            return True
        # Fire: the poisoned forecast has inflated the victim's
        # effective budget — commit the whole botnet at once.
        self._flood_at_s = None
        self.rate_rps = self.max_rate_rps
        self.generator.mix = self.target_mix
        self.state = AttackerState.PROBING
        self.generator.set_clients(
            clients_for_rate(self.rate_rps, self.generator.mix, self.think_s)
        )
        self._record(detected, effective, quarantined)
        return True

    def _adjust(self) -> None:
        detected = bool(self.detection_signal())
        effective = bool(self.effect_signal())
        quarantined = bool(self.quarantine_signal())
        if self._poison_phase_adjust(detected, effective, quarantined):
            return
        if quarantined and self.dilution_step > 0.0:
            # Anti-detector evasion: blend benign-looking requests into
            # the stream so the behavioural scores (entropy, per-request
            # power) drift back toward the population baseline.  The
            # cost is potency — diluted requests burn less power.
            self.dilution = min(
                self.max_dilution, self.dilution + self.dilution_step
            )
            self.generator.mix = self._blended_mix()
        if detected:
            self.state = AttackerState.BACKING_OFF
            self.rate_rps = max(1.0, self.rate_rps * self.backoff_factor)
            if self.rotate_on_detection:
                self.rotate_agents()
        elif effective:
            self.state = AttackerState.CONVERGED
            # Hold: an effective, undetected rate is the DOPE sweet spot.
        else:
            self.state = AttackerState.PROBING
            self.rate_rps = min(self.max_rate_rps, self.rate_rps + self.rate_step_rps)
        self.generator.set_clients(
            clients_for_rate(self.rate_rps, self.generator.mix, self.think_s)
        )
        self._record(detected, effective, quarantined)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DopeAttacker(rate={self.rate_rps:.0f}rps over {self.pool.size} "
            f"agents, state={self.state.value})"
        )
