"""Flood-attack traffic models (http-load / ApacheBench and friends).

Two layers of abstraction:

* :func:`make_flood` — a single flood generator: a request type (or
  mix), an aggregate rate, and an agent count, paced like the paper's
  tools (http-load's constant concurrency ≈ constant rate with small
  jitter; ApacheBench's fixed concurrent-request count likewise).
* :data:`ATTACK_SCENARIOS` — the Section 3.1 attack taxonomy used by
  the Fig. 3 power-profile characterisation, mapping each named
  cyber-attack to the request mix and rate envelope it presents to the
  victim.  Application-layer attacks resolve to high-power catalog
  types; network/transport-layer floods resolve to the near-zero-power
  volume type at much higher packet rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .._validation import check_int, check_positive
from ..network.sources import SourceRegistry
from ..sim.engine import EventEngine
from ..trace.arrival import ArrivalProcess, ConstantRateProcess, PoissonProcess
from .catalog import (
    COLLA_FILT,
    K_MEANS,
    TEXT_CONT,
    VOLUME_DOS,
    WORD_COUNT,
    RequestMix,
    RequestType,
    TrafficClass,
    uniform_mix,
)
from .generator import (
    ClosedLoopGenerator,
    Dispatch,
    TrafficGenerator,
    clients_for_rate,
)

__all__ = [
    "make_flood",
    "AttackScenario",
]


def make_flood(
    engine: EventEngine,
    dispatch: Dispatch,
    registry: SourceRegistry,
    rng: np.random.Generator,
    mix,
    rate_rps: float,
    num_agents: int = 1,
    label: str = "flood",
    closed_loop: bool = True,
    think_s: float = 0.2,
    poisson: bool = False,
    jitter: float = 0.05,
) -> TrafficGenerator:
    """Build one flood generator.

    Parameters
    ----------
    mix:
        A :class:`RequestType` or :class:`RequestMix` the flood requests.
    rate_rps:
        Target aggregate request rate across all agents (the rate the
        tool would achieve against an unthrottled victim).
    num_agents:
        Recruited agents the rate is spread over (per-agent rate =
        ``rate_rps / num_agents`` — the firewall-evasion knob).
    closed_loop:
        Model the tool as fixed-concurrency (ApacheBench's ``-c``,
        http-load's ``-parallel``): offered load self-limits when the
        victim slows.  ``False`` gives an open-loop packet blaster that
        holds *rate_rps* regardless of victim state (network-layer
        floods).
    think_s:
        Closed-loop client think time.
    poisson:
        Open loop only: Poisson pacing instead of near-constant pacing.
    jitter:
        Open loop only: relative jitter of constant pacing.
    """
    check_positive("rate_rps", rate_rps)
    check_int("num_agents", num_agents, minimum=1)
    pool = registry.allocate(label, TrafficClass.ATTACK, num_agents)
    if closed_loop:
        return ClosedLoopGenerator(
            engine=engine,
            dispatch=dispatch,
            rng=rng,
            source_pool=pool,
            mix=mix,
            num_clients=clients_for_rate(rate_rps, mix, think_s),
            think_s=think_s,
            label=label,
        )
    process: ArrivalProcess = (
        PoissonProcess(rate_rps)
        if poisson
        else ConstantRateProcess(rate_rps, jitter=jitter)
    )
    return TrafficGenerator(
        engine=engine,
        dispatch=dispatch,
        rng=rng,
        source_pool=pool,
        mix=mix,
        process=process,
        label=label,
    )


@dataclass(frozen=True)
class AttackScenario:
    """One named cyber-attack from the Section 3.1 characterisation.

    ``power_class`` is the paper's qualitative grouping in Fig. 3:
    ``high`` (red lines), ``medium`` (black) or ``low`` (blue).
    """

    name: str
    layer: str
    mix: RequestMix
    default_rate_rps: float
    power_class: str
    description: str

    def build(
        self,
        engine: EventEngine,
        dispatch: Dispatch,
        registry: SourceRegistry,
        rng: np.random.Generator,
        rate_rps: Optional[float] = None,
        num_agents: int = 20,
    ) -> TrafficGenerator:
        """Instantiate the scenario as a flood generator.

        Application/presentation-layer attacks use the closed-loop tool
        model; network/transport volume floods blast packets open-loop
        (a SYN flood does not wait for responses).
        """
        return make_flood(
            engine,
            dispatch,
            registry,
            rng,
            mix=self.mix,
            rate_rps=rate_rps if rate_rps is not None else self.default_rate_rps,
            num_agents=num_agents,
            label=self.name,
            closed_loop=self.layer in ("application", "presentation"),
        )


def _scenarios() -> Dict[str, AttackScenario]:
    volume = RequestMix({VOLUME_DOS: 1.0})
    return {
        s.name: s
        for s in (
            AttackScenario(
                name="http-flood",
                layer="application",
                mix=uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT, TEXT_CONT)),
                default_rate_rps=400.0,
                power_class="high",
                description="HTTP GET flood against the EC endpoints "
                "(http-load / ApacheBench).",
            ),
            AttackScenario(
                name="dns-flood",
                layer="application",
                mix=RequestMix({WORD_COUNT: 0.5, TEXT_CONT: 0.5}),
                default_rate_rps=600.0,
                power_class="high",
                description="DNS query flood: lookups fan out to "
                "disk/text-serving work on the resolvers.",
            ),
            AttackScenario(
                name="ssl-renegotiation",
                layer="presentation",
                mix=RequestMix({COLLA_FILT: 0.3, TEXT_CONT: 0.7}),
                default_rate_rps=250.0,
                power_class="medium",
                description="Repeated TLS handshakes burn CPU on "
                "asymmetric crypto at moderate rates.",
            ),
            AttackScenario(
                name="syn-flood",
                layer="transport",
                mix=volume,
                default_rate_rps=5000.0,
                power_class="low",
                description="TCP SYN flood: connection-table exhaustion, "
                "negligible per-packet compute.",
            ),
            AttackScenario(
                name="udp-flood",
                layer="network",
                mix=volume,
                default_rate_rps=8000.0,
                power_class="low",
                description="UDP volume flood saturating link bandwidth.",
            ),
            AttackScenario(
                name="icmp-flood",
                layer="network",
                mix=volume,
                default_rate_rps=6000.0,
                power_class="low",
                description="ICMP echo flood (smurf-style).",
            ),
            AttackScenario(
                name="slowloris",
                layer="application",
                mix=RequestMix({TEXT_CONT: 1.0}),
                default_rate_rps=30.0,
                power_class="low",
                description="Slow, connection-holding requests; starves "
                "sockets, not watts.",
            ),
        )
    }


#: The Fig. 3 attack taxonomy, keyed by scenario name.
ATTACK_SCENARIOS: Dict[str, AttackScenario] = _scenarios()

#: Scenario names grouped by the paper's Fig. 3 colour classes.
POWER_CLASSES: Dict[str, Tuple[str, ...]] = {
    "high": tuple(s.name for s in ATTACK_SCENARIOS.values() if s.power_class == "high"),
    "medium": tuple(
        s.name for s in ATTACK_SCENARIOS.values() if s.power_class == "medium"
    ),
    "low": tuple(s.name for s in ATTACK_SCENARIOS.values() if s.power_class == "low"),
}
