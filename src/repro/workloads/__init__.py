"""Traffic substrate: request catalog, generators, attacks, DOPE.

Only the (dependency-free) catalog is imported eagerly; the generator
modules pull in the network/sim substrates and are exposed lazily via
PEP 562 so that low-level modules can import the catalog without
dragging the whole stack in (and without import cycles).
"""

from .catalog import (
    ALL_TYPES,
    COLLA_FILT,
    K_MEANS,
    TEXT_CONT,
    VICTIM_TYPES,
    VOLUME_DOS,
    WORD_COUNT,
    RequestMix,
    RequestType,
    TrafficClass,
    alios_mix,
    get_type,
    get_type_by_url,
    uniform_mix,
)

_LAZY = {
    "TrafficGenerator": ("generator", "TrafficGenerator"),
    "make_normal_traffic": ("normal", "make_normal_traffic"),
    "make_flood": ("attacks", "make_flood"),
    "AttackScenario": ("attacks", "AttackScenario"),
    "ATTACK_SCENARIOS": ("attacks", "ATTACK_SCENARIOS"),
    "POWER_CLASSES": ("attacks", "POWER_CLASSES"),
    "DopeAttacker": ("dope", "DopeAttacker"),
    "DopeStats": ("dope", "DopeStats"),
    "DopeAdjustment": ("dope", "DopeAdjustment"),
    "AttackerState": ("dope", "AttackerState"),
    "ATTACK_MODES": ("dope", "ATTACK_MODES"),
    "PulseAttacker": ("pulse", "PulseAttacker"),
    "PulseStats": ("pulse", "PulseStats"),
    "ClosedLoopGenerator": ("generator", "ClosedLoopGenerator"),
    "clients_for_rate": ("generator", "clients_for_rate"),
    "make_flash_crowd": ("flashcrowd", "make_flash_crowd"),
    "flash_sale_mix": ("flashcrowd", "flash_sale_mix"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


__all__ = [
    "RequestType",
    "RequestMix",
    "TrafficClass",
    "COLLA_FILT",
    "K_MEANS",
    "WORD_COUNT",
    "TEXT_CONT",
    "VOLUME_DOS",
    "VICTIM_TYPES",
    "ALL_TYPES",
    "get_type",
    "get_type_by_url",
    "alios_mix",
    "uniform_mix",
    "TrafficGenerator",
    "make_normal_traffic",
    "make_flood",
    "AttackScenario",
    "ATTACK_SCENARIOS",
    "POWER_CLASSES",
    "DopeAttacker",
    "DopeStats",
    "DopeAdjustment",
    "AttackerState",
    "ATTACK_MODES",
    "PulseAttacker",
    "PulseStats",
    "ClosedLoopGenerator",
    "clients_for_rate",
    "make_flash_crowd",
    "flash_sale_mix",
]
