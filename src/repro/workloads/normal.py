"""Normal-user traffic (the paper's "AliOS" population).

Legitimate users access the e-Commerce service with the light-skewed
AliOS request mix, at a rate modulated by the Alibaba container trace's
aggregate load curve.  The population is spread across many independent
sources, so per-source rates are far below any firewall threshold —
normal users never trip the perimeter defence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_int, check_positive, require
from ..network.sources import SourceRegistry
from ..sim.engine import EventEngine
from ..trace.alibaba import ClusterTrace
from ..trace.arrival import ModulatedPoissonProcess, PoissonProcess
from .catalog import RequestMix, TrafficClass, alios_mix
from .generator import Dispatch, TrafficGenerator

__all__ = ["make_normal_traffic"]


def make_normal_traffic(
    engine: EventEngine,
    dispatch: Dispatch,
    registry: SourceRegistry,
    rng: np.random.Generator,
    rate_rps: float = 40.0,
    num_users: int = 200,
    mix: Optional[RequestMix] = None,
    trace: Optional[ClusterTrace] = None,
    trace_peak_rate_rps: Optional[float] = None,
    label: str = "alios",
) -> TrafficGenerator:
    """Build the legitimate-user generator.

    Without a trace the population is plain Poisson at *rate_rps*.
    With a *trace*, arrivals follow a non-homogeneous Poisson process
    whose rate tracks the trace's aggregate load between *rate_rps*
    (trough) and *trace_peak_rate_rps* (peak, default ``2 × rate_rps``).

    Parameters
    ----------
    engine, dispatch, registry, rng:
        Simulation wiring (see :class:`TrafficGenerator`).
    rate_rps:
        Base aggregate request rate of the population.
    num_users:
        Number of distinct legitimate sources the rate is spread over.
    mix:
        Request-type mix (default: the AliOS mix).
    trace:
        Optional Alibaba-like cluster trace modulating the rate.
    trace_peak_rate_rps:
        Rate at the trace's load peak.
    """
    check_positive("rate_rps", rate_rps)
    check_int("num_users", num_users, minimum=1)
    pool = registry.allocate(label, TrafficClass.NORMAL, num_users)
    if trace is None:
        process = PoissonProcess(rate_rps)
    else:
        peak = trace_peak_rate_rps if trace_peak_rate_rps is not None else 2 * rate_rps
        require(peak >= rate_rps, "trace_peak_rate_rps must be >= rate_rps")
        process = ModulatedPoissonProcess(
            trace.to_rate_function(rate_rps, peak), rate_max=peak
        )
    return TrafficGenerator(
        engine=engine,
        dispatch=dispatch,
        rng=rng,
        source_pool=pool,
        mix=mix or alios_mix(),
        process=process,
        label=label,
    )
