"""Traffic generator: the engine-driven request source.

A :class:`TrafficGenerator` owns one arrival process, one request-type
mix and one source pool, and feeds the NLB dispatch function one
request per arrival event.  Sources are cycled round-robin across the
pool's agents so an aggregate rate ``R`` over ``N`` agents presents as
``R/N`` per source to the firewall — the mechanism every attacker in
this package builds on.

Rate changes (ramps, the DOPE adjustment loop) swap the arrival
process in place; the change takes effect from the next scheduled
arrival, modelling a load generator reconfiguring between batches.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from .._validation import check_non_negative, check_positive, require
from ..network.request import Request
from ..network.sources import SourcePool
from ..sim.engine import EventEngine
from ..trace.arrival import ArrivalProcess, ConstantRateProcess, PoissonProcess
from .catalog import RequestMix, RequestType

__all__ = [
    "TrafficGenerator",
    "ClosedLoopGenerator",
    "clients_for_rate",
]

Dispatch = Callable[[Request], bool]

#: Minimum expected arrivals in a candidate fluid segment.  Below this
#: the per-request batched path is at least as cheap as the segment
#: bookkeeping, so the generator does not bother with the jump.
_FLUID_MIN_EXPECTED_EVENTS = 4.0


class TrafficGenerator:
    """Emit requests from *source_pool* into *dispatch*.

    Parameters
    ----------
    engine:
        Simulation engine.
    dispatch:
        Ingress function (normally ``NetworkLoadBalancer.dispatch``).
    rng:
        Seeded generator for type sampling and arrival noise.
    source_pool:
        Agent identities this generator sends from.
    mix:
        Request-type distribution (a single :class:`RequestType` is
        accepted and wrapped as a degenerate mix).
    process:
        Arrival process producing inter-arrival gaps.
    label:
        Name used in diagnostics.
    """

    def __init__(
        self,
        engine: EventEngine,
        dispatch: Dispatch,
        rng: np.random.Generator,
        source_pool: SourcePool,
        mix,
        process: ArrivalProcess,
        label: str = "traffic",
    ) -> None:
        self.engine = engine
        self.dispatch = dispatch
        self.rng = rng
        self.source_pool = source_pool
        if isinstance(mix, RequestType):
            mix = RequestMix({mix: 1.0})
        require(isinstance(mix, RequestMix), "mix must be a RequestMix or RequestType")
        self.mix = mix
        self.process = process
        self.label = label
        self.generated = 0
        self.accepted = 0
        self._next_agent = 0
        self._pending = None
        self._running = False
        #: Optional fluid absorber (:class:`repro.sim.fluid.
        #: BannedPoolDrain`); wired by the simulation facade on fluid
        #: engines, consulted only there.
        self.fluid_drain = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, delay_s: float = 0.0) -> None:
        """Begin generating after *delay_s* seconds."""
        check_non_negative("delay_s", delay_s)
        if self._running:
            raise RuntimeError(f"generator {self.label!r} already running")
        self._running = True
        self._pending = self.engine.schedule(delay_s, self._first_arrival)

    def stop(self) -> None:
        """Stop generating; pending arrival is cancelled."""
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def run_window(self, start_s: float, end_s: float) -> None:
        """Generate only inside ``[start_s, end_s)`` (attack windows)."""
        require(0 <= start_s < end_s, "need 0 <= start_s < end_s")
        self.engine.schedule_at(start_s, lambda: self.start(0.0))
        self.engine.schedule_at(end_s, self.stop)

    def set_process(self, process: ArrivalProcess) -> None:
        """Swap the arrival process (effective from the next arrival)."""
        self.process = process

    def set_rate(self, rate: float, jitter: float = 0.0) -> None:
        """Convenience: switch to constant-rate pacing at *rate* req/s."""
        self.set_process(ConstantRateProcess(rate, jitter))

    @property
    def current_rate(self) -> float:
        """Mean rate of the active arrival process."""
        return self.process.mean_rate()

    # ------------------------------------------------------------------
    # Event path
    # ------------------------------------------------------------------
    def _first_arrival(self) -> None:
        # The window opens with an immediate draw of the first gap so a
        # generator started at t emits its first request at t + gap.
        self._schedule_next()

    def _schedule_next(self) -> None:
        if not self._running:
            return
        if self.engine.batched:
            self._advance_batched()
            return
        gap = self.process.next_interarrival(self.rng, self.engine.now)
        if math.isinf(gap):
            self._running = False
            self._pending = None
            return
        self._pending = self.engine.schedule(gap, self._emit)

    def _emit(self) -> None:
        if not self._running:
            return
        self._emit_one()
        self._schedule_next()

    def _emit_one(self) -> RequestType:
        """Generate and dispatch one request at the current instant."""
        rtype = self.mix.sample(self.rng)
        source_id = self.source_pool.first_id + self._next_agent
        self._next_agent = (self._next_agent + 1) % self.source_pool.size
        request = Request(
            rtype=rtype,
            source_id=source_id,
            traffic_class=self.source_pool.traffic_class,
            arrival_time_s=self.engine.now,
            request_id=self.engine.next_serial(),
        )
        self.generated += 1
        if self.dispatch(request):
            self.accepted += 1
        return rtype

    def _advance_batched(self) -> None:
        """Cohort run-ahead: emit consecutive arrivals inline.

        Replays the exact scalar sequence — draw gap, arrive, sample
        type, dispatch, draw next gap — but advances the clock through
        :meth:`~repro.sim.engine.EventEngine.try_advance_inline`
        instead of paying a heap round-trip per arrival.  The inline
        advance succeeds only while this generator's next arrival
        provably precedes every queued event, so nothing (completions,
        control slots, ``stop()`` windows) can interleave mid-run and
        the RNG draw order is untouched.  The moment that proof fails,
        the arrival is scheduled as a regular event from the same
        ``gap`` — the identical float the scalar path would push — and
        the loop exits.

        Consecutive same-type arrivals within one run form a *cohort*
        (requests still materialise ids individually at dispatch, where
        firewall/PDF/service outcomes diverge); the cohort tallies feed
        the execution counters, which the deterministic manifest
        excludes.
        """
        engine = self.engine
        clock = engine.clock
        rng = self.rng
        fluid = engine.fluid and self.fluid_drain is not None
        cohort_type: Optional[RequestType] = None
        cohort_len = 0
        cohorts = 0
        cohort_requests = 0
        while self._running:
            if fluid and self._try_fluid_segment():
                continue
            gap = self.process.next_interarrival(rng, clock._now)
            if math.isinf(gap):
                self._running = False
                self._pending = None
                break
            if not engine.try_advance_inline(clock._now + gap):
                self._pending = engine.schedule(gap, self._emit)
                break
            rtype = self._emit_one()
            if rtype is cohort_type:
                cohort_len += 1
            else:
                if cohort_len:
                    cohorts += 1
                    cohort_requests += cohort_len
                cohort_type = rtype
                cohort_len = 1
        if cohort_len:
            cohorts += 1
            cohort_requests += cohort_len
        if cohorts:
            counters = engine.obs.counters
            counters.inc("engine.cohorts_dispatched", cohorts)
            counters.inc("engine.cohort_requests", cohort_requests)

    def _try_fluid_segment(self) -> bool:
        """Analytically integrate one provably-steady segment.

        Applies only on fluid engines with a wired drain, and only
        while the arrival process is a homogeneous (memoryless)
        Poisson stream — restarting such a process at the segment end
        is exact.  The segment runs from now to the earliest of the
        drain's steadiness horizon, the next queued event and the run
        deadline; the arrival count is one Poisson draw, the bulk
        bookkeeping is the drain's, and the absorbed requests never
        materialise ids.  Returns ``False`` (no side effects) when the
        proof fails or the segment is too short to pay for itself.
        """
        process = self.process
        if type(process) is not PoissonProcess:
            return False
        rate = process.rate
        if rate <= 0.0:
            return False
        engine = self.engine
        now = engine.clock._now
        drain = self.fluid_drain
        horizon = drain.horizon(now)
        if horizon is None:
            return False
        t_end = horizon
        until = engine._until
        if until is not None and until < t_end:
            t_end = until
        next_time_s = engine._queue.peek_time()
        if next_time_s is not None and next_time_s < t_end:
            t_end = next_time_s
        dt = t_end - now
        if not (dt * rate >= _FLUID_MIN_EXPECTED_EVENTS):  # NaN-safe
            return False
        count = int(self.rng.poisson(rate * dt))
        if not engine.try_advance_fluid(t_end, count):
            return False
        if count:
            self.generated += count
            drain.absorb(self, count, t_end)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrafficGenerator({self.label!r}, rate~{self.current_rate:.0f}rps, "
            f"generated={self.generated})"
        )


class ClosedLoopGenerator:
    """Fixed-concurrency load generator (ApacheBench / http-load model).

    ``num_clients`` virtual clients each keep exactly one request
    outstanding: send → wait for the terminal event (completion *or*
    drop) → think for an exponential pause → send again.  Offered load
    is therefore self-limiting — when the victim slows down (DVFS) or
    sheds requests, the achieved rate drops instead of the queues
    exploding, exactly like the paper's attack tools with a fixed
    concurrency setting.

    The aggregate achieved rate is roughly
    ``num_clients / (think_s + response_time)``; use
    :func:`clients_for_rate` to size a client pool for a target rate.

    Parameters
    ----------
    engine, dispatch, rng, source_pool, mix:
        As for :class:`TrafficGenerator`.
    num_clients:
        Concurrency level (outstanding requests).
    think_s:
        Mean exponential think time between a response and the client's
        next request.
    """

    def __init__(
        self,
        engine: EventEngine,
        dispatch: Dispatch,
        rng: np.random.Generator,
        source_pool: SourcePool,
        mix,
        num_clients: int,
        think_s: float = 0.2,
        label: str = "closed-loop",
    ) -> None:
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        check_non_negative("think_s", think_s)
        self.engine = engine
        self.dispatch = dispatch
        self.rng = rng
        self.source_pool = source_pool
        if isinstance(mix, RequestType):
            mix = RequestMix({mix: 1.0})
        require(isinstance(mix, RequestMix), "mix must be a RequestMix or RequestType")
        self.mix = mix
        self.num_clients = int(num_clients)
        self.think_s = float(think_s)
        self.label = label
        self.generated = 0
        self.accepted = 0
        self._running = False
        self._active_clients = 0
        self._next_agent = 0
        # Epoch guards against stale in-flight terminals resurrecting
        # clients after a stop()/start() cycle (pulse attacks restart).
        self._epoch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, delay_s: float = 0.0) -> None:
        """Spin up all clients after *delay_s* seconds.

        Restartable: a stopped generator may be started again; requests
        still in flight from the previous burst terminate without
        re-issuing.
        """
        check_non_negative("delay_s", delay_s)
        if self._running:
            raise RuntimeError(f"generator {self.label!r} already running")
        self._running = True
        self._epoch += 1
        self.engine.schedule(delay_s, self._launch_clients, arg=self._epoch)

    def _launch_clients(self, epoch: int) -> None:
        if not self._running or epoch != self._epoch:
            return
        # Stagger client starts across one think time so the opening
        # burst does not arrive as a single instant spike.
        self._active_clients = 0
        spread = max(self.think_s, 0.05)
        for _ in range(self.num_clients):
            offset = float(self.rng.uniform(0.0, spread))
            self.engine.schedule(offset, self._client_send, arg=epoch)
            self._active_clients += 1

    def stop(self) -> None:
        """Cease fire: clients stop re-issuing after their next terminal."""
        self._running = False

    def run_window(self, start_s: float, end_s: float) -> None:
        """Generate only inside ``[start_s, end_s)``."""
        require(0 <= start_s < end_s, "need 0 <= start_s < end_s")
        self.engine.schedule_at(start_s, lambda: self.start(0.0))
        self.engine.schedule_at(end_s, self.stop)

    def set_clients(self, num_clients: int) -> None:
        """Grow or shrink the client pool (the DOPE rate knob).

        Growth launches fresh clients immediately; shrinkage retires
        clients as their in-flight requests terminate.
        """
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        delta = int(num_clients) - self.num_clients
        self.num_clients = int(num_clients)
        if self._running and delta > 0:
            epoch = self._epoch
            spread = max(self.think_s, 0.05)
            for _ in range(delta):
                offset = float(self.rng.uniform(0.0, spread))
                self.engine.schedule(offset, self._client_send, arg=epoch)
                self._active_clients += 1
        # Negative delta handled lazily in _client_terminal.

    @property
    def current_rate(self) -> float:
        """Rough upper bound of the achieved rate (zero think assumed)."""
        base = self.mix.expected_base_service()
        return self.num_clients / max(self.think_s + base, 1e-9)

    # ------------------------------------------------------------------
    # Client loop
    # ------------------------------------------------------------------
    def _client_send(self, epoch: int) -> None:
        if not self._running or epoch != self._epoch:
            return
        if self._active_clients > self.num_clients:
            self._active_clients -= 1  # retire excess client
            return
        rtype = self.mix.sample(self.rng)
        source_id = self.source_pool.first_id + self._next_agent
        self._next_agent = (self._next_agent + 1) % self.source_pool.size
        request = Request(
            rtype=rtype,
            source_id=source_id,
            traffic_class=self.source_pool.traffic_class,
            arrival_time_s=self.engine.now,
            request_id=self.engine.next_serial(),
        )
        request.on_terminal = lambda r, o, t: self._client_terminal(epoch)
        self.generated += 1
        if self.dispatch(request):
            self.accepted += 1
        # Drops fire on_terminal synchronously, which reschedules us.

    def _client_terminal(self, epoch: int) -> None:
        if not self._running or epoch != self._epoch:
            return
        think = (
            float(self.rng.exponential(self.think_s)) if self.think_s > 0 else 0.0
        )
        self.engine.schedule(think, self._client_send, arg=epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClosedLoopGenerator({self.label!r}, clients={self.num_clients}, "
            f"generated={self.generated})"
        )


def clients_for_rate(
    target_rate_rps: float, mix, think_s: float = 0.2
) -> int:
    """Client count for a target *unthrottled* rate.

    Little's law at the healthy-system operating point:
    ``clients = rate × (think + mean service)``.  When the victim is
    throttled the same pool achieves proportionally less — by design.
    """
    check_positive("target_rate_rps", target_rate_rps)
    check_non_negative("think_s", think_s)
    if isinstance(mix, RequestType):
        base = mix.base_service_s
    else:
        base = mix.expected_base_service()
    return max(1, int(round(target_rate_rps * (think_s + base))))
