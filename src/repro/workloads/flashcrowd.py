"""Flash crowds: legitimate traffic that looks like an attack.

Power oversubscription is justified by the assumption that correlated
peaks are rare — but they are not malicious when they happen.  A flash
crowd (a sale, a breaking story) is a surge of *legitimate* requests,
often heavy ones, from a large set of genuine users.  To a power-profile
defence it is indistinguishable from DOPE: Anti-DOPE will route the
surge to the suspect pool and throttle it — the false-positive cost of
the KISS principle, which the flash-crowd bench quantifies.

:func:`make_flash_crowd` builds a windowed closed-loop surge tagged
``NORMAL`` (these are real users) spread across many distinct sources.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_int, check_positive, require
from ..network.sources import SourceRegistry
from ..sim.engine import EventEngine
from .catalog import COLLA_FILT, K_MEANS, RequestMix, TrafficClass, WORD_COUNT
from .generator import ClosedLoopGenerator, Dispatch, clients_for_rate

__all__ = [
    "flash_sale_mix",
    "make_flash_crowd",
]


def flash_sale_mix() -> RequestMix:
    """What a flash sale hammers: recommendations and classification.

    A surge of purchase-intent users drives the *heavy* EC endpoints —
    exactly the suspect-listed ones.
    """
    return RequestMix({COLLA_FILT: 0.45, K_MEANS: 0.30, WORD_COUNT: 0.25})


def make_flash_crowd(
    engine: EventEngine,
    dispatch: Dispatch,
    registry: SourceRegistry,
    rng: np.random.Generator,
    rate_rps: float = 250.0,
    num_users: int = 500,
    start_s: float = 0.0,
    duration_s: float = 120.0,
    mix: Optional[RequestMix] = None,
    think_s: float = 0.2,
    label: str = "flash-crowd",
) -> ClosedLoopGenerator:
    """Build a legitimate surge generator, windowed to the event.

    Parameters
    ----------
    rate_rps:
        Target surge rate against an unloaded service.
    num_users:
        Distinct genuine users — far more identities than any botnet,
        so per-source rates are microscopic.
    start_s, duration_s:
        The event window.
    mix:
        Request mix; defaults to the heavy flash-sale mix.
    """
    check_positive("rate_rps", rate_rps)
    check_int("num_users", num_users, minimum=1)
    check_positive("duration_s", duration_s)
    require(start_s >= 0, "start_s must be >= 0")
    pool = registry.allocate(label, TrafficClass.NORMAL, num_users)
    the_mix = mix or flash_sale_mix()
    gen = ClosedLoopGenerator(
        engine=engine,
        dispatch=dispatch,
        rng=rng,
        source_pool=pool,
        mix=the_mix,
        num_clients=clients_for_rate(rate_rps, the_mix, think_s),
        think_s=think_s,
        label=label,
    )
    gen.run_window(start_s, start_s + duration_s)
    return gen
