"""Request-type catalog (paper Table 1).

The paper's proof-of-concept e-Commerce service exposes four victim
endpoints plus volume-based DoS traffic and a normal-user mix:

* **Colla-Filt** — collaborative filtering; compute-intensive, the
  highest power *intensity* (its power CDF in Fig. 5a is sub-vertical,
  pressed against the nameplate).
* **K-means** — memory-intensive classification; the highest power *per
  request* (Fig. 5b) and the least frequency-sensitive, so DVFS must cut
  deeper to cap it (Fig. 6b).
* **Word-Count** — disk-heavy text scanning; moderate power, can still
  raise power at light traffic rates (Fig. 4a).
* **Text-Cont** — plain text retrieval; light.
* **volume DoS** — network-layer flood packets; near-zero per-request
  power (Fig. 5b) but very high achievable rates.

Each type is modelled by four orthogonal knobs:

``base_service_s``
    Service time of one request on one otherwise-idle worker running at
    the maximum CPU frequency.
``cpu_boundness``
    Fraction of the work that scales with core frequency.  The rest
    (memory/disk/network time) is frequency-invariant, so service time
    at frequency ``f`` is ``base / ((1-c) + c * f/f_max)``.
``power_intensity``
    Fraction of the server's per-worker dynamic power budget this type
    burns while executing (Colla-Filt ~1.0, volume DoS ~0.05).
``freq_sensitivity``
    Fraction of the type's dynamic power that scales with ``(f/f_max)^α``;
    the remainder (DRAM/disk power) is spent regardless of the CPU's
    V/F point.  Low values model K-means' "power is less sensitive to
    frequency changes".
"""

from __future__ import annotations

import enum
import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import ClassVar, Dict, Iterable, List, Mapping, Tuple

import numpy as np

from .._validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
    require,
)

__all__ = [
    "TrafficClass",
    "RequestType",
    "get_type",
    "get_type_by_url",
    "RequestMix",
    "alios_mix",
    "uniform_mix",
]


class TrafficClass(enum.Enum):
    """Provenance of a request — who generated it.

    The simulator tags every request so metrics can be split into the
    legitimate population (whose latency the SLA protects) and the
    attack population, exactly as the paper's figures do.
    """

    NORMAL = "normal"
    ATTACK = "attack"
    PROBE = "probe"


@dataclass(frozen=True)
class RequestType:
    """Immutable profile of one service endpoint (one URL).

    Parameters mirror the module docstring.  ``service_cv`` is the
    coefficient of variation of the (lognormal) service-time noise.
    """

    name: str
    url: str
    base_service_s: float
    cpu_boundness: float
    power_intensity: float
    freq_sensitivity: float
    service_cv: float = 0.1
    description: str = ""

    # Derived lognormal noise parameters (set in __post_init__; declared
    # as ClassVar so the dataclass machinery does not treat them as
    # fields — they never appear in eq/repr/asdict).
    _ln_sigma: ClassVar[float]
    _ln_mu: ClassVar[float]

    def __post_init__(self) -> None:
        require(bool(self.name), "name must be non-empty")
        require(self.url.startswith("/"), f"url must start with '/': {self.url!r}")
        check_positive("base_service_s", self.base_service_s)
        check_fraction("cpu_boundness", self.cpu_boundness)
        check_fraction("power_intensity", self.power_intensity)
        check_fraction("freq_sensitivity", self.freq_sensitivity)
        check_fraction("service_cv", self.service_cv)
        # Lognormal service-noise parameters, precomputed once per type
        # (the dataclass is frozen, so the cached values can never go
        # stale).  ``object.__setattr__`` is the standard frozen-class
        # idiom for derived attributes.
        if self.service_cv > 0:
            sigma2 = math.log(1.0 + self.service_cv * self.service_cv)
            object.__setattr__(self, "_ln_sigma", math.sqrt(sigma2))
            object.__setattr__(self, "_ln_mu", -0.5 * sigma2)
        else:
            object.__setattr__(self, "_ln_sigma", 0.0)
            object.__setattr__(self, "_ln_mu", 0.0)

    def speedup(self, freq_ratio: float) -> float:
        """Execution-speed multiplier at ``f/f_max == freq_ratio``.

        A fully CPU-bound type (``cpu_boundness == 1``) slows down
        linearly with frequency; a fully memory-bound one is unaffected.
        """
        check_fraction("freq_ratio", freq_ratio)
        c = self.cpu_boundness
        return (1.0 - c) + c * freq_ratio

    def service_time(self, freq_ratio: float) -> float:
        """Deterministic service time (seconds) at the given frequency ratio."""
        return self.base_service_s / self.speedup(freq_ratio)

    def dynamic_power_factor(self, freq_ratio: float, alpha: float = 2.4) -> float:
        """Per-worker dynamic-power multiplier at the given frequency ratio.

        Combines the type's overall intensity with its frequency
        sensitivity: ``γ · (s · r^α + (1 - s))``, where ``r`` is the
        frequency ratio, ``s`` the sensitivity and ``γ`` the intensity.
        """
        check_fraction("freq_ratio", freq_ratio)
        check_positive("alpha", alpha)
        s = self.freq_sensitivity
        return self.power_intensity * (s * freq_ratio**alpha + (1.0 - s))


# ----------------------------------------------------------------------
# The Table 1 catalog
# ----------------------------------------------------------------------

COLLA_FILT = RequestType(
    name="colla-filt",
    url="/api/recommend",
    base_service_s=0.150,
    cpu_boundness=0.95,
    power_intensity=1.00,
    freq_sensitivity=0.90,
    service_cv=0.08,
    description=(
        "Collaborative filtering used by the recommender system; "
        "compute-intensive, highest power intensity."
    ),
)

K_MEANS = RequestType(
    name="k-means",
    url="/api/classify",
    base_service_s=0.200,
    cpu_boundness=0.40,
    power_intensity=0.95,
    freq_sensitivity=0.35,
    service_cv=0.10,
    description=(
        "K-means classification; memory-intensive, highest power per "
        "request and least sensitive to V/F scaling."
    ),
)

WORD_COUNT = RequestType(
    name="word-count",
    url="/api/wordcount",
    base_service_s=0.090,
    cpu_boundness=0.55,
    power_intensity=0.70,
    freq_sensitivity=0.55,
    service_cv=0.15,
    description="Word counting over text files read from disk.",
)

TEXT_CONT = RequestType(
    name="text-cont",
    url="/api/text",
    base_service_s=0.022,
    cpu_boundness=0.75,
    power_intensity=0.35,
    freq_sensitivity=0.75,
    service_cv=0.20,
    description="Plain text-content retrieval; the lightest EC endpoint.",
)

VOLUME_DOS = RequestType(
    name="volume-dos",
    url="/",
    base_service_s=0.0015,
    cpu_boundness=0.90,
    power_intensity=0.05,
    freq_sensitivity=0.90,
    service_cv=0.05,
    description=(
        "Volume-based (network-layer) flood packet; negligible "
        "per-request power."
    ),
)

VICTIM_TYPES: Tuple[RequestType, ...] = (COLLA_FILT, K_MEANS, WORD_COUNT, TEXT_CONT)
ALL_TYPES: Tuple[RequestType, ...] = VICTIM_TYPES + (VOLUME_DOS,)

_BY_NAME: Dict[str, RequestType] = {t.name: t for t in ALL_TYPES}
_BY_URL: Dict[str, RequestType] = {t.url: t for t in ALL_TYPES}


def get_type(name: str) -> RequestType:
    """Look up a catalog type by its ``name`` field."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown request type {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def get_type_by_url(url: str) -> RequestType:
    """Look up a catalog type by its URL (the NLB's classification key)."""
    try:
        return _BY_URL[url]
    except KeyError:
        raise KeyError(f"no request type registered for url {url!r}") from None


class RequestMix:
    """A discrete distribution over request types.

    Used both for the normal-user (AliOS) mix and for attacker type
    selection.  Sampling is vectorised: :meth:`sample_many` draws *n*
    types in one NumPy call, which is what the arrival-batch generators
    use on the hot path.
    """

    __slots__ = ("types", "weights", "_cum", "_cum_list", "_last_index")

    def __init__(self, weighted_types: Mapping[RequestType, float]):
        require(len(weighted_types) > 0, "RequestMix needs at least one type")
        items: List[Tuple[RequestType, float]] = list(weighted_types.items())
        weights = check_probability_vector("weights", [w for _, w in items])
        self.types: Tuple[RequestType, ...] = tuple(t for t, _ in items)
        self.weights: Tuple[float, ...] = tuple(weights)
        self._cum = np.cumsum(np.asarray(weights))
        # Plain-list mirror for the scalar hot path: bisect on a list
        # costs ~0.07 µs where np.searchsorted on the same data costs
        # ~1.6 µs (per-call NumPy dispatch overhead dominates at n≈5).
        self._cum_list: List[float] = self._cum.tolist()
        self._last_index = len(self.types) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{t.name}={w:.2f}" for t, w in zip(self.types, self.weights)
        )
        return f"RequestMix({parts})"

    def sample(self, rng: np.random.Generator) -> RequestType:
        """Draw a single request type.

        ``bisect_right`` on the cumulative weights is semantically
        identical to ``np.searchsorted(..., side="right")`` — the same
        uniform draw maps to the same index.
        """
        idx = bisect_right(self._cum_list, rng.random())
        if idx > self._last_index:
            idx = self._last_index
        return self.types[idx]

    def sample_many(self, rng: np.random.Generator, n: int) -> List[RequestType]:
        """Draw *n* request types in one vectorised call."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        draws = rng.random(n)
        idx = np.searchsorted(self._cum, draws, side="right")
        idx = np.minimum(idx, len(self.types) - 1)
        return [self.types[i] for i in idx]

    def expected_base_service(self) -> float:
        """Mean service time at f_max under this mix."""
        return float(
            sum(w * t.base_service_s for t, w in zip(self.types, self.weights))
        )

    def expected_power_factor(self, freq_ratio: float = 1.0) -> float:
        """Mean per-worker dynamic power factor under this mix."""
        return float(
            sum(
                w * t.dynamic_power_factor(freq_ratio)
                for t, w in zip(self.types, self.weights)
            )
        )


def alios_mix() -> RequestMix:
    """The AliOS normal-user mix imitating Alibaba online EC access.

    Dominated by light text traffic with occasional heavy analytics, so
    the legitimate load keeps power utilisation comfortably low
    (Fig. 15a's red line) until an attack arrives.
    """
    return RequestMix(
        {
            TEXT_CONT: 0.78,
            WORD_COUNT: 0.13,
            COLLA_FILT: 0.05,
            K_MEANS: 0.04,
        }
    )


def uniform_mix(types: Iterable[RequestType]) -> RequestMix:
    """Equal-weight mix over *types* (attacker sweeps use this)."""
    ts = list(types)
    require(len(ts) > 0, "uniform_mix needs at least one type")
    return RequestMix({t: 1.0 / len(ts) for t in ts})
