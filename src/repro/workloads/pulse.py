"""Pulse (duty-cycled) DOPE attack.

An extension of the threat model the paper's battery discussion points
at: a smart adversary does not need a *sustained* peak.  Pulsing the
flood on and off

* keeps the time-averaged request rate even further below detection
  thresholds,
* repeatedly forces battery-backed schemes through
  discharge/shallow-recharge cycles (batteries recharge far slower
  than they discharge, so a duty cycle tuned to the recharge rate
  ratchets the SoC down), and
* whipsaws DVFS controllers between throttle and recovery.

:class:`PulseAttacker` wraps a closed-loop flood with an on/off square
wave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .._validation import check_fraction, check_int, check_positive
from ..network.sources import SourceRegistry
from ..sim.engine import EventEngine
from ..sim.events import PRIORITY_CONTROL
from .catalog import RequestMix, TrafficClass, uniform_mix
from .generator import ClosedLoopGenerator, Dispatch, clients_for_rate

__all__ = [
    "PulseStats",
    "PulseAttacker",
]


@dataclass
class PulseStats:
    """On/off transition log."""

    pulses: int = 0
    transitions: List[tuple] = field(default_factory=list)


class PulseAttacker:
    """Square-wave DOPE flood.

    Parameters
    ----------
    engine, dispatch, registry, rng:
        Simulation wiring.
    rate_rps:
        Aggregate rate during the *on* phase.
    period_s:
        Full cycle length.
    duty:
        Fraction of the period spent attacking.
    num_agents, target_mix, think_s:
        As for the plain flood.
    """

    def __init__(
        self,
        engine: EventEngine,
        dispatch: Dispatch,
        registry: SourceRegistry,
        rng: np.random.Generator,
        rate_rps: float = 300.0,
        period_s: float = 60.0,
        duty: float = 0.5,
        num_agents: int = 20,
        target_mix: Optional[RequestMix] = None,
        think_s: float = 0.2,
        label: str = "pulse-dope",
    ) -> None:
        from .catalog import COLLA_FILT, K_MEANS, WORD_COUNT

        check_positive("rate_rps", rate_rps)
        check_positive("period_s", period_s)
        check_fraction("duty", duty, inclusive=False)
        check_int("num_agents", num_agents, minimum=1)
        self.engine = engine
        self.period_s = float(period_s)
        self.duty = float(duty)
        self.rate_rps = float(rate_rps)
        self.stats = PulseStats()
        pool = registry.allocate(label, TrafficClass.ATTACK, num_agents)
        mix = target_mix or uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))
        self._clients = clients_for_rate(rate_rps, mix, think_s)
        self.generator = ClosedLoopGenerator(
            engine=engine,
            dispatch=dispatch,
            rng=rng,
            source_pool=pool,
            mix=mix,
            num_clients=self._clients,
            think_s=think_s,
            label=label,
        )
        self._running = False

    @property
    def mean_rate_rps(self) -> float:
        """Time-averaged rate (the figure a rate detector would see)."""
        return self.rate_rps * self.duty

    def start(self, delay_s: float = 0.0) -> None:
        """Begin pulsing after *delay_s* seconds."""
        if self._running:
            raise RuntimeError("pulse attacker already running")
        self._running = True
        self.engine.schedule(delay_s, self._pulse_on)

    def stop(self) -> None:
        """Cease fire at the next transition."""
        self._running = False
        self.generator.stop()

    def _pulse_on(self) -> None:
        if not self._running:
            return
        self.stats.pulses += 1
        self.stats.transitions.append((self.engine.now, "on"))
        self.generator.start(0.0)
        self.engine.schedule(
            self.period_s * self.duty, self._pulse_off, priority=PRIORITY_CONTROL
        )

    def _pulse_off(self) -> None:
        self.stats.transitions.append((self.engine.now, "off"))
        self.generator.stop()
        if self._running:
            self.engine.schedule(
                self.period_s * (1.0 - self.duty),
                self._pulse_on,
                priority=PRIORITY_CONTROL,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PulseAttacker(rate={self.rate_rps:.0f}rps, duty={self.duty:.2f}, "
            f"period={self.period_s:.0f}s, pulses={self.stats.pulses})"
        )
