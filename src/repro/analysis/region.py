"""DOPE attack-region characterisation (paper Fig. 11).

Fig. 11 defines DOPE's operating region on the (request type × traffic
rate) plane: the set of attack configurations that **violate the power
budget** while staying **undetected by the perimeter defence**.  This
module sweeps that plane by running one short simulation per cell and
classifying the outcome into four zones:

* ``benign``      — within budget, undetected (harmless traffic);
* ``dope``        — budget violated, undetected (the threat region);
* ``detected``    — budget violated but the firewall caught it
  (a conventional DoS: damage is bounded by the ban);
* ``filtered``    — detected without even violating the budget
  (high-volume, low-power floods).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_int, check_positive, require
from ..detect import make_scheme, validate_scheme_names
from ..obs import Recorder
from ..power.budget import BudgetLevel
from ..runner import CellSpec, ResultCache, canonical_json, run_cells
from ..sim.config import SimulationConfig
from ..sim.engine import engine_from_env, resolve_engine_selection
from ..sim.simulation import DataCenterSimulation
from ..workloads.catalog import RequestType

__all__ = [
    "RegionCell",
    "RegionResult",
    "DopeRegionAnalyzer",
]


@dataclass(frozen=True)
class RegionCell:
    """One sweep point."""

    type_name: str
    rate_rps: float
    num_agents: int
    peak_power_w: float
    budget_w: float
    violated: bool
    detected: bool
    #: True when the probe ran under a detection-capable scheme and the
    #: scheme quarantined at least one flood source.  Folded into
    #: ``detected`` already; kept separately so the fig11 comparison can
    #: attribute detections to the firewall vs the online detector.
    detector_flagged: bool = False

    @property
    def zone(self) -> str:
        """Zone classification (see module docstring)."""
        if self.violated and not self.detected:
            return "dope"
        if self.violated and self.detected:
            return "detected"
        if self.detected:
            return "filtered"
        return "benign"


@dataclass
class RegionResult:
    """The swept grid with query helpers."""

    cells: List[RegionCell]

    def zone_of(self, type_name: str, rate_rps: float) -> str:
        """Zone of the cell at (type, rate)."""
        for cell in self.cells:
            if cell.type_name == type_name and math.isclose(
                cell.rate_rps, rate_rps, rel_tol=1e-9, abs_tol=0.0
            ):
                return cell.zone
        raise KeyError(f"no cell for ({type_name!r}, {rate_rps})")

    def dope_cells(self) -> List[RegionCell]:
        """All cells inside the DOPE region."""
        return [c for c in self.cells if c.zone == "dope"]

    def dope_fraction(self) -> float:
        """Fraction of swept cells inside the DOPE region.

        The fig11 headline metric: a detection scheme *shrinks* this
        number relative to the unmanaged (or static-list) sweep of the
        same grid, because cells it flags migrate from ``dope`` to
        ``detected``.
        """
        if not self.cells:
            return 0.0
        return len(self.dope_cells()) / len(self.cells)

    def dope_onset_rate(self, type_name: str) -> Optional[float]:
        """Lowest swept rate at which *type_name* enters the DOPE region."""
        rates = sorted(
            c.rate_rps
            for c in self.cells
            if c.type_name == type_name and c.zone == "dope"
        )
        return rates[0] if rates else None

    def as_rows(self) -> List[Tuple]:
        """Flat rows for tabular reporting."""
        return [
            (
                c.type_name,
                c.rate_rps,
                c.num_agents,
                c.peak_power_w,
                c.budget_w,
                c.zone,
            )
            for c in self.cells
        ]


class DopeRegionAnalyzer:
    """Sweep the (type × rate) plane with short unmanaged simulations.

    Parameters
    ----------
    config:
        Infrastructure to probe (budget level matters most).  The sweep
        runs *without* a power-management scheme: the question Fig. 11
        answers is where the raw vulnerability lies, not how schemes
        respond.
    window_s:
        Simulated seconds per cell (short — peak detection only).
    num_agents:
        Attacker agents the rate is spread over; more agents push the
        detection frontier to higher aggregate rates.
    background_rate_rps:
        Legitimate load present during the probe.
    scheme:
        Optional scheme name (see :data:`repro.detect.SCHEME_NAMES`) to
        run each probe under.  ``None`` keeps the classic unmanaged
        sweep.  With a detection-capable scheme (``online-detect``) a
        cell also counts as *detected* when the scheme quarantines any
        flood source — the detectable-region comparison of fig11.
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        window_s: float = 60.0,
        num_agents: int = 20,
        background_rate_rps: float = 20.0,
        scheme: Optional[str] = None,
    ) -> None:
        check_positive("window_s", window_s)
        check_int("num_agents", num_agents, minimum=1)
        check_positive("background_rate_rps", background_rate_rps)
        if scheme is not None:
            validate_scheme_names([scheme])
        self.config = config or SimulationConfig(budget_level=BudgetLevel.MEDIUM)
        self.window_s = float(window_s)
        self.num_agents = num_agents
        self.background_rate_rps = float(background_rate_rps)
        self.scheme = scheme

    def probe(self, rtype: RequestType, rate_rps: float) -> RegionCell:
        """Run one cell and classify it.

        The probe honours ``REPRO_BENCH_ENGINE`` but defaults to the
        *batched* engine rather than fluid: sweep cells are model
        measurements, and batched is byte-identical to the scalar
        reference while fluid is only statistically faithful.
        """
        check_positive("rate_rps", rate_rps)
        engine_mode, fluid = resolve_engine_selection(
            engine_from_env(default="batched")
        )
        scheme = (
            make_scheme(self.scheme, self.config)
            if self.scheme is not None
            else None
        )
        sim = DataCenterSimulation(
            self.config, scheme=scheme, engine_mode=engine_mode, fluid=fluid
        )
        sim.add_normal_traffic(rate_rps=self.background_rate_rps, num_users=50)
        flood = sim.add_flood(
            mix=rtype,
            rate_rps=rate_rps,
            num_agents=self.num_agents,
            label=f"probe-{rtype.name}",
        )
        sim.run(self.window_s)
        peak = sim.meter.peak_power()
        flagged = False
        if scheme is not None and hasattr(scheme, "suspect_sources"):
            pool = flood.source_pool
            flagged = any(
                pool.contains(source) for source in scheme.suspect_sources
            )
        detected = sim.firewall.stats.bans > 0 or flagged
        return RegionCell(
            type_name=rtype.name,
            rate_rps=rate_rps,
            num_agents=self.num_agents,
            peak_power_w=peak,
            budget_w=sim.budget.supply_w,
            violated=peak > sim.budget.supply_w,
            detected=detected,
            detector_flagged=flagged,
        )

    def sweep(
        self,
        types: Sequence[RequestType],
        rates_rps: Sequence[float],
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        recorder: Optional[Recorder] = None,
    ) -> RegionResult:
        """Probe the full grid (``len(types) × len(rates)`` cells).

        ``workers>1`` runs probe cells in parallel processes; cell
        order — and therefore every exported artifact — is identical to
        the serial sweep.  ``cache`` reuses stored cells keyed on the
        analyzer's full configuration, the cell coordinates and the
        repro version.  ``recorder`` collects runner counters (cells,
        cache hits/misses) and wall timings for this sweep.
        """
        require(len(types) > 0, "need at least one type")
        require(len(rates_rps) > 0, "need at least one rate")
        probe = _RegionProbe(self, types)
        specs = [
            CellSpec(
                index=index,
                params={"type_name": rtype.name, "rate_rps": float(rate)},
                seed=self.config.seed,
            )
            for index, (rtype, rate) in enumerate(
                (t, r) for t in types for r in rates_rps
            )
        ]
        outcomes = run_cells(
            probe,
            specs,
            workers=workers,
            cache=cache,
            experiment_id=self.experiment_id(),
            recorder=recorder,
        )
        cells = []
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
            assert outcome.value is not None
            cells.append(RegionCell(**outcome.value))  # type: ignore[arg-type]
        return RegionResult(cells)

    def experiment_id(self) -> str:
        """Cache identity: the probe routine plus every analyzer knob.

        The ``scheme`` key only appears when a scheme is set — classic
        unmanaged sweeps keep their pre-detector cache identity.
        """
        knobs = {
            "config": asdict(self.config),
            "window_s": self.window_s,
            "num_agents": self.num_agents,
            "background_rate_rps": self.background_rate_rps,
        }
        if self.scheme is not None:
            knobs["scheme"] = self.scheme
        fingerprint = canonical_json(knobs)
        return f"repro.analysis.region.DopeRegionAnalyzer.probe/{fingerprint}"


class _RegionProbe:
    """Picklable cell experiment: (type_name, rate) → RegionCell fields."""

    def __init__(
        self, analyzer: DopeRegionAnalyzer, types: Sequence[RequestType]
    ) -> None:
        self.analyzer = analyzer
        self.by_name: Dict[str, RequestType] = {t.name: t for t in types}

    def __call__(self, type_name: str, rate_rps: float) -> Mapping[str, object]:
        cell = self.analyzer.probe(self.by_name[type_name], rate_rps)
        return asdict(cell)
