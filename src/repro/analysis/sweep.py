"""Parameter sweeps and multi-seed replication.

The benches pin qualitative shapes from single seeded runs; robust
claims need replication.  This module provides the two tools the
robustness benches are built from:

* :func:`replicate` — run an experiment across seeds and summarise any
  scalar metrics with mean, standard deviation and a normal-theory
  confidence interval;
* :class:`GridSweep` — run an experiment over a cartesian parameter
  grid (optionally replicated per cell) and collect results as flat
  rows ready for :func:`~repro.analysis.report.format_table`.

Both execute their cells through :func:`repro.runner.run_cells`, so
``workers=N`` fans them out across processes (results merged in
canonical cell order — output is byte-identical to serial) and
``cache=`` makes repeat runs near-instant.  The defaults (``workers=1``,
no cache) preserve the original strictly-serial in-process behaviour,
lambdas and all.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_fraction, require
from ..obs import Recorder
from ..runner import CellSpec, ResultCache, default_experiment_id, run_cells

__all__ = [
    "MetricSummary",
    "replicate",
    "GridSweep",
]

#: experiment(seed) -> {metric_name: value}
Experiment = Callable[[int], Mapping[str, float]]


@dataclass(frozen=True)
class MetricSummary:
    """Replicated statistics of one scalar metric."""

    name: str
    n: int
    mean: float
    std: float
    ci_half_width: float

    @property
    def ci_low(self) -> float:
        """Lower edge of the confidence interval."""
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        """Upper edge of the confidence interval."""
        return self.mean + self.ci_half_width

    def __str__(self) -> str:
        return f"{self.name}={self.mean:.4g}±{self.ci_half_width:.2g} (n={self.n})"


# Two-sided z-quantiles for the usual confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    check_fraction("confidence", confidence, inclusive=False)
    z = _Z.get(round(confidence, 2))
    if z is None:
        raise ValueError(f"confidence must be one of {sorted(_Z)}")
    return z


class _SeedCall:
    """Adapter: ``fn(seed)`` positional → runner's keyword convention.

    Picklable whenever the wrapped experiment is, so it survives the
    trip to a worker process; in serial mode nothing is ever pickled
    and lambda experiments keep working exactly as before.
    """

    def __init__(self, fn: Experiment) -> None:
        self.fn = fn

    def __call__(self, seed: int) -> Mapping[str, float]:
        return self.fn(seed)


def _summarise(
    per_metric: Mapping[str, List[float]], n: int, z: float
) -> Dict[str, MetricSummary]:
    summaries = {}
    for k in per_metric:
        arr = np.asarray(per_metric[k])
        std = float(arr.std(ddof=1)) if n > 1 else 0.0
        summaries[k] = MetricSummary(
            name=k,
            n=n,
            mean=float(arr.mean()),
            std=std,
            ci_half_width=z * std / math.sqrt(n) if n > 1 else 0.0,
        )
    return summaries


def _collect_metrics(
    cell_values: Sequence[Tuple[int, Mapping[str, object]]],
) -> Dict[str, List[float]]:
    """Seed-ordered metric columns, enforcing consistent keys per cell."""
    results: Dict[str, List[float]] = {}
    keys: Tuple[str, ...] = ()
    for seed, out in cell_values:
        if not keys:
            keys = tuple(sorted(out))
            for k in keys:
                results[k] = []
        elif tuple(sorted(out)) != keys:
            raise ValueError(
                f"seed {seed} returned metrics {sorted(out)}; expected {list(keys)}"
            )
        for k in keys:
            results[k].append(float(out[k]))  # type: ignore[arg-type]
    return results


def replicate(
    experiment: Experiment,
    seeds: Sequence[int],
    confidence: float = 0.95,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    experiment_id: Optional[str] = None,
    recorder: Optional[Recorder] = None,
) -> Dict[str, MetricSummary]:
    """Run *experiment* once per seed and summarise every metric.

    The experiment returns a dict of scalar metrics; all runs must
    return the same metric keys.  ``workers>1`` fans seeds out across
    processes (the experiment must then be picklable); ``cache`` reuses
    stored results keyed on ``(experiment_id, seed, repro version)``;
    ``recorder`` collects runner counters and wall timings.
    """
    require(len(seeds) > 0, "need at least one seed")
    z = _z_for(confidence)
    if cache is not None and experiment_id is None:
        experiment_id = default_experiment_id(experiment)
    specs = [
        CellSpec(index=i, params={"seed": int(seed)}, seed=int(seed))
        for i, seed in enumerate(seeds)
    ]
    outcomes = run_cells(
        _SeedCall(experiment),
        specs,
        workers=workers,
        cache=cache,
        experiment_id=experiment_id,
        recorder=recorder,
    )
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
    values = [
        (spec.seed, outcome.value)
        for spec, outcome in zip(specs, outcomes)
        if outcome.value is not None
    ]
    return _summarise(_collect_metrics(values), len(seeds), z)


class GridSweep:
    """Cartesian sweep over named parameter axes.

    Parameters
    ----------
    axes:
        Mapping of parameter name → values to sweep.
    """

    def __init__(self, axes: Mapping[str, Sequence]) -> None:
        require(len(axes) > 0, "GridSweep needs at least one axis")
        for name, values in axes.items():
            require(len(values) > 0, f"axis {name!r} has no values")
        self.axes = {name: list(values) for name, values in axes.items()}

    def points(self) -> List[Dict[str, object]]:
        """All grid points as parameter dicts, in axis-major order."""
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[n] for n in names))
        ]

    def run(
        self,
        experiment: Callable[..., Mapping[str, float]],
        seeds: Sequence[int] = (0,),
        confidence: float = 0.95,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        experiment_id: Optional[str] = None,
        on_error: str = "raise",
        recorder: Optional[Recorder] = None,
    ) -> List[Dict[str, object]]:
        """Run *experiment(**params, seed=s)* on every cell × seed.

        Returns one row per grid point: the parameters plus each
        metric's :class:`MetricSummary`.  Cells fan out over
        ``workers`` processes (grid-point × seed cells all run
        concurrently); rows come back in grid order regardless.

        ``on_error`` controls failure handling: ``"raise"`` (default)
        raises the first cell's :class:`~repro.runner.CellError`;
        ``"keep"`` records errors under each row's ``"errors"`` key and
        summarises the seeds that did succeed, so one bad cell cannot
        sink a long sweep.
        """
        require(len(seeds) > 0, "need at least one seed")
        require(on_error in ("raise", "keep"), f"bad on_error {on_error!r}")
        z = _z_for(confidence)
        if cache is not None and experiment_id is None:
            experiment_id = default_experiment_id(experiment)

        points = self.points()
        specs = []
        index = 0
        for params in points:
            for seed in seeds:
                specs.append(
                    CellSpec(
                        index=index,
                        params={**params, "seed": int(seed)},
                        seed=int(seed),
                    )
                )
                index += 1
        outcomes = run_cells(
            experiment,
            specs,
            workers=workers,
            cache=cache,
            experiment_id=experiment_id,
            recorder=recorder,
        )

        rows = []
        n_seeds = len(seeds)
        for p, params in enumerate(points):
            cell_outcomes = outcomes[p * n_seeds : (p + 1) * n_seeds]
            errors = tuple(o.error for o in cell_outcomes if o.error is not None)
            if errors and on_error == "raise":
                raise errors[0]
            values = [
                (spec.seed, outcome.value)
                for spec, outcome in zip(
                    specs[p * n_seeds : (p + 1) * n_seeds], cell_outcomes
                )
                if outcome.value is not None
            ]
            row: Dict[str, object] = dict(params)
            row.update(_summarise(_collect_metrics(values), len(values), z))
            if on_error == "keep":
                row["errors"] = errors
            rows.append(row)
        return rows

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n
