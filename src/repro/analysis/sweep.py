"""Parameter sweeps and multi-seed replication.

The benches pin qualitative shapes from single seeded runs; robust
claims need replication.  This module provides the two tools the
robustness benches are built from:

* :func:`replicate` — run an experiment across seeds and summarise any
  scalar metrics with mean, standard deviation and a normal-theory
  confidence interval;
* :class:`GridSweep` — run an experiment over a cartesian parameter
  grid (optionally replicated per cell) and collect results as flat
  rows ready for :func:`~repro.analysis.report.format_table`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from .._validation import check_fraction, check_int, require

__all__ = [
    "MetricSummary",
    "replicate",
    "GridSweep",
]

#: experiment(seed) -> {metric_name: value}
Experiment = Callable[[int], Mapping[str, float]]


@dataclass(frozen=True)
class MetricSummary:
    """Replicated statistics of one scalar metric."""

    name: str
    n: int
    mean: float
    std: float
    ci_half_width: float

    @property
    def ci_low(self) -> float:
        """Lower edge of the confidence interval."""
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        """Upper edge of the confidence interval."""
        return self.mean + self.ci_half_width

    def __str__(self) -> str:
        return f"{self.name}={self.mean:.4g}±{self.ci_half_width:.2g} (n={self.n})"


# Two-sided z-quantiles for the usual confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def replicate(
    experiment: Experiment,
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> Dict[str, MetricSummary]:
    """Run *experiment* once per seed and summarise every metric.

    The experiment returns a dict of scalar metrics; all runs must
    return the same metric keys.
    """
    require(len(seeds) > 0, "need at least one seed")
    check_fraction("confidence", confidence, inclusive=False)
    z = _Z.get(round(confidence, 2))
    if z is None:
        raise ValueError(f"confidence must be one of {sorted(_Z)}")

    results: Dict[str, List[float]] = {}
    keys: Tuple[str, ...] = ()
    for seed in seeds:
        out = dict(experiment(int(seed)))
        if not keys:
            keys = tuple(sorted(out))
            for k in keys:
                results[k] = []
        elif tuple(sorted(out)) != keys:
            raise ValueError(
                f"seed {seed} returned metrics {sorted(out)}; expected {list(keys)}"
            )
        for k in keys:
            results[k].append(float(out[k]))

    summaries = {}
    n = len(seeds)
    for k in keys:
        arr = np.asarray(results[k])
        std = float(arr.std(ddof=1)) if n > 1 else 0.0
        summaries[k] = MetricSummary(
            name=k,
            n=n,
            mean=float(arr.mean()),
            std=std,
            ci_half_width=z * std / math.sqrt(n) if n > 1 else 0.0,
        )
    return summaries


class GridSweep:
    """Cartesian sweep over named parameter axes.

    Parameters
    ----------
    axes:
        Mapping of parameter name → values to sweep.
    """

    def __init__(self, axes: Mapping[str, Sequence]) -> None:
        require(len(axes) > 0, "GridSweep needs at least one axis")
        for name, values in axes.items():
            require(len(values) > 0, f"axis {name!r} has no values")
        self.axes = {name: list(values) for name, values in axes.items()}

    def points(self) -> List[Dict[str, object]]:
        """All grid points as parameter dicts, in axis-major order."""
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[n] for n in names))
        ]

    def run(
        self,
        experiment: Callable[..., Mapping[str, float]],
        seeds: Sequence[int] = (0,),
        confidence: float = 0.95,
    ) -> List[Dict[str, object]]:
        """Run *experiment(**params, seed=s)* on every cell × seed.

        Returns one row per grid point: the parameters plus each
        metric's :class:`MetricSummary`.
        """
        rows = []
        for params in self.points():
            summaries = replicate(
                lambda seed: experiment(**params, seed=seed),
                seeds,
                confidence=confidence,
            )
            row: Dict[str, object] = dict(params)
            row.update(summaries)
            rows.append(row)
        return rows

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n
