"""Result export: CSV and JSON for external plotting tools.

The simulator never plots; it exports.  These functions flatten the
three result artefacts — completion records, power-meter samples and
latency summaries — into formats any plotting stack (matplotlib,
gnuplot, a spreadsheet) consumes directly, so figure generation stays
out of the library.
"""

from __future__ import annotations

import csv
import json
from typing import IO, TYPE_CHECKING, Iterable, Mapping, Optional, Union

from ..metrics.collector import MetricsCollector
from ..metrics.latency import LatencyStats
from ..network.request import CompletionRecord
from ..obs import jsonable
from ..power.meter import PowerMeter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.topology import TopologyMonitor
    from ..power.budget import PowerBudget
    from .region import RegionResult

__all__ = [
    "records_to_csv",
    "meter_to_csv",
    "stats_to_json",
    "collector_summary",
    "detector_summary",
    "region_delta_summary",
    "topology_summary",
]

PathOrFile = Union[str, IO[str]]


def _open(target: PathOrFile):
    if isinstance(target, str):
        return open(target, "w", newline=""), True
    return target, False


def records_to_csv(
    records: Iterable[CompletionRecord], target: PathOrFile
) -> int:
    """Write completion records as CSV; returns the row count.

    Columns: ``request_id, type, class, outcome, arrival_s, finish_s,
    response_ms, server, weight``.  Aggregate (fluid-mode) records
    export with ``request_id = -1`` and their cohort weight.
    """
    fh, owned = _open(target)
    try:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "request_id",
                "type",
                "class",
                "outcome",
                "arrival_s",
                "finish_s",
                "response_ms",
                "server",
                "weight",
            ]
        )
        n = 0
        for r in records:
            writer.writerow(
                [
                    r.request_id,
                    r.type_name,
                    r.traffic_class.value,
                    r.outcome.value,
                    f"{r.arrival_time_s:.6f}",
                    f"{r.finish_time_s:.6f}",
                    f"{r.response_time * 1e3:.3f}" if r.completed else "",
                    r.server_id if r.server_id is not None else "",
                    r.weight,
                ]
            )
            n += 1
        return n
    finally:
        if owned:
            fh.close()


def meter_to_csv(meter: PowerMeter, target: PathOrFile) -> int:
    """Write power-meter samples as CSV; returns the row count.

    Columns: ``time_s, power_w, mean_level, battery_soc``.
    """
    fh, owned = _open(target)
    try:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "power_w", "mean_level", "battery_soc"])
        for s in meter.samples:
            writer.writerow(
                [
                    f"{s.time_s:.3f}",
                    f"{s.power_w:.3f}",
                    f"{s.mean_level:.3f}",
                    "" if s.battery_soc is None else f"{s.battery_soc:.4f}",
                ]
            )
        return len(meter.samples)
    finally:
        if owned:
            fh.close()


def stats_to_json(
    stats: Mapping[str, LatencyStats],
    target: PathOrFile,
    extra: Optional[Mapping[str, object]] = None,
) -> None:
    """Serialise named latency summaries (plus optional metadata) as JSON.

    Empty-window statistics carry ``NaN`` fields; those serialise as
    ``null`` (``NaN`` is not JSON), and ``allow_nan=False`` guarantees
    no non-finite value can ever reach the output.
    """
    payload: dict = {"latency": {k: v.as_millis() for k, v in stats.items()}}
    if extra:
        payload["meta"] = dict(extra)
    fh, owned = _open(target)
    try:
        json.dump(jsonable(payload), fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    finally:
        if owned:
            fh.close()


def topology_summary(
    monitor: "TopologyMonitor",
    meter: PowerMeter,
    budget: "PowerBudget",
) -> dict:
    """JSON-ready hierarchical power summary of one tree run.

    Pairs the facility-level view (``feed_meter``: what the DC-feed
    meter and its budget say) with the per-node truth (``nodes``: each
    PDU's budget, peak and violation slots) and names the node most
    often found to be the *deepest* violation site.  This is the export
    that makes the paper's blind spot visible: a rack PDU can violate —
    and be correctly blamed — while ``feed_meter.violated`` is false.
    """
    peak_w = meter.peak_power()
    return jsonable(
        {
            "feed_meter": {
                "budget_w": budget.supply_w,
                "peak_power_w": peak_w,
                "violated": budget.violated(peak_w),
            },
            "nodes": monitor.report(),
            "deepest_violator": monitor.deepest_violator(),
        }
    )


def detector_summary(scheme: object) -> Optional[dict]:
    """JSON-ready audit record of an online detector's decisions.

    Returns ``None`` for schemes without a ``report()`` API (the four
    static Table-2 schemes), so callers can attach the summary
    unconditionally.  For :class:`~repro.detect.OnlineDetectScheme` the
    record carries the dynamic suspect-pool membership (sources and
    servers), the per-source anomaly scores and the calibration state —
    strictly JSON-representable: scores are finite floats by
    construction and the whole record passes through
    :func:`repro.obs.jsonable` (``allow_nan=False`` safe).
    """
    report = getattr(scheme, "report", None)
    if report is None:
        return None
    return jsonable(report())


def region_delta_summary(
    result_a: "RegionResult",
    result_b: "RegionResult",
    label_a: str = "a",
    label_b: str = "b",
) -> dict:
    """JSON-ready fig11 delta between two same-grid region sweeps.

    The scheme-comparison export: given two :class:`RegionResult`\\ s
    swept over the **same** (type × rate) grid under different schemes,
    report each side's DOPE-region size and list every cell whose zone
    classification moved.  A positive ``dope_delta_cells`` means
    *result_b* leaves more of the plane exploitable than *result_a* —
    the number the prediction-vs-anti-dope question is answered with.

    Raises :class:`ValueError` when the grids differ: a delta between
    sweeps of different planes would compare nothing.
    """
    key_a = [(c.type_name, c.rate_rps) for c in result_a.cells]
    key_b = [(c.type_name, c.rate_rps) for c in result_b.cells]
    if key_a != key_b:
        raise ValueError(
            "region results cover different grids: "
            f"{len(key_a)} vs {len(key_b)} cells or mismatched coordinates"
        )
    zone_changes = [
        {
            "type": cell_a.type_name,
            "rate_rps": cell_a.rate_rps,
            label_a: cell_a.zone,
            label_b: cell_b.zone,
        }
        for cell_a, cell_b in zip(result_a.cells, result_b.cells)
        if cell_a.zone != cell_b.zone
    ]
    dope_a = len(result_a.dope_cells())
    dope_b = len(result_b.dope_cells())
    return jsonable(
        {
            "labels": [label_a, label_b],
            "cells": len(result_a.cells),
            "dope_cells": {label_a: dope_a, label_b: dope_b},
            "dope_fraction": {
                label_a: result_a.dope_fraction(),
                label_b: result_b.dope_fraction(),
            },
            "dope_delta_cells": dope_b - dope_a,
            "zone_changes": zone_changes,
        }
    )


def collector_summary(collector: MetricsCollector) -> dict:
    """One-shot JSON-ready summary of an entire collector.

    The result is strictly JSON-representable: latency fields of a
    class with zero completions come out as ``None``, never ``NaN``.
    """
    from ..network.request import RequestOutcome
    from ..workloads.catalog import TrafficClass

    summary: dict = {"total": collector.total(), "by_class": {}}
    for cls in TrafficClass:
        records = collector.filtered(traffic_class=cls)
        if not records:
            continue
        outcomes = {o.value: 0 for o in RequestOutcome}
        for r in records:
            outcomes[r.outcome.value] += r.weight
        summary["by_class"][cls.value] = {
            "count": sum(r.weight for r in records),
            "outcomes": {k: v for k, v in outcomes.items() if v},
            "latency": LatencyStats.from_records(records).as_millis(),
        }
    return jsonable(summary)
