"""Analysis helpers: CDFs, DOPE-region sweeps, tabular reporting."""

from .cdf import EmpiricalCDF
from .export import (
    collector_summary,
    detector_summary,
    meter_to_csv,
    records_to_csv,
    region_delta_summary,
    stats_to_json,
)
from .region import DopeRegionAnalyzer, RegionCell, RegionResult
from .report import format_table, print_table
from .sweep import GridSweep, MetricSummary, replicate

__all__ = [
    "EmpiricalCDF",
    "DopeRegionAnalyzer",
    "RegionCell",
    "RegionResult",
    "format_table",
    "print_table",
    "GridSweep",
    "MetricSummary",
    "replicate",
    "records_to_csv",
    "meter_to_csv",
    "stats_to_json",
    "collector_summary",
    "detector_summary",
    "region_delta_summary",
]
