"""Empirical CDFs (Figs. 4b, 5a and 10 are all power CDFs).

A tiny exact-empirical-CDF helper: sorted-sample evaluation, quantile
inversion, and the normalised-to-nameplate form the paper plots power
distributions in.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .._validation import check_positive, require

__all__ = ["EmpiricalCDF"]


class EmpiricalCDF:
    """Exact empirical distribution of a 1-D sample."""

    def __init__(self, samples: Sequence[float]) -> None:
        arr = np.asarray(samples, dtype=float)
        require(arr.size > 0, "EmpiricalCDF needs at least one sample")
        require(bool(np.all(np.isfinite(arr))), "samples must be finite")
        self._sorted = np.sort(arr)

    @property
    def n(self) -> int:
        """Sample size."""
        return int(self._sorted.size)

    @property
    def values(self) -> np.ndarray:
        """Sorted sample (read-only view)."""
        return self._sorted

    def evaluate(self, x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """``F(x) = P[X <= x]`` (vectorised)."""
        result = np.searchsorted(self._sorted, x, side="right") / self.n
        if np.isscalar(x):
            return float(result)
        return result

    def quantile(self, q: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Inverse CDF via linear interpolation (``q`` in [0, 1])."""
        result = np.quantile(self._sorted, q)
        if np.isscalar(q):
            return float(result)
        return np.asarray(result)

    def normalized(self, reference: float) -> "EmpiricalCDF":
        """CDF of the sample divided by *reference* (e.g. nameplate power)."""
        check_positive("reference", reference)
        return EmpiricalCDF(self._sorted / reference)

    def steps(self) -> tuple:
        """``(x, F(x))`` arrays for a staircase plot of the CDF."""
        x = self._sorted
        y = np.arange(1, self.n + 1) / self.n
        return x, y

    def median(self) -> float:
        """50th percentile."""
        return self.quantile(0.5)

    def spread(self, lo: float = 0.1, hi: float = 0.9) -> float:
        """Inter-quantile spread — "sub-vertical" CDFs have tiny spread."""
        require(0 <= lo < hi <= 1, "need 0 <= lo < hi <= 1")
        return float(self.quantile(hi) - self.quantile(lo))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EmpiricalCDF(n={self.n}, median={self.median():.3g}, "
            f"spread={self.spread():.3g})"
        )
