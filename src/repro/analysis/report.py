"""Plain-text table reporting used by the benchmark harness.

Every bench prints the rows/series its paper figure reports; these
helpers keep that output uniform and diff-friendly (fixed-width
monospace, explicit units in headers).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = [
    "format_table",
    "print_table",
]

Cell = Union[str, float, int]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned monospace table.

    Numbers are auto-formatted (3 significant-ish digits, NaN as '-');
    column widths adapt to content.
    """
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        """Render one right-aligned table row."""
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> None:
    """Print :func:`format_table` output (bench convenience)."""
    print()
    print(format_table(headers, rows, title))
    print()
