"""Power-management scheme interface (paper Table 2).

Every evaluated scheme — Capping, Shaving, Token, Anti-DOPE — is a
:class:`PowerManagementScheme`: an object the simulation *binds* to the
rack/budget/battery/NLB once, then ticks every control slot.  Schemes
can additionally contribute a forwarding policy (Anti-DOPE's PDF) and
an admission filter (Token's bucket) to the ingress pipeline, so the
whole Table 2 matrix is expressed by swapping one object.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from .._validation import check_positive
from .battery import Battery
from .budget import PowerBudget
from .sensor import SensorReading

__all__ = [
    "PowerManagementScheme",
    "NullScheme",
    "UniformCappingMixin",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.rack import Rack
    from ..cluster.server import Server
    from ..cluster.topology import PowerTopology
    from ..network.load_balancer import AdmissionFilter, ForwardingPolicy
    from ..sim.engine import EventEngine
    from .sensor import FaultyPowerSensor


class PowerManagementScheme:
    """Base class for Table 2 schemes.

    Subclasses override :meth:`step` (the per-slot control action) and
    optionally :meth:`forwarding_policy` / :meth:`admission_filter` to
    hook the NLB.  :meth:`bind` wires in the shared infrastructure and
    may be extended, but subclasses must call ``super().bind(...)``.
    """

    #: Human-readable scheme name (Table 2 key).
    name: str = "base"

    def __init__(self) -> None:
        self.engine: Optional[EventEngine] = None
        self.rack: Optional[Rack] = None
        self.budget: Optional[PowerBudget] = None
        self.battery: Optional[Battery] = None
        self.slot_s: float = 1.0
        self.bound = False
        # Optional power tree (hierarchical mode); None = flat rack.
        self.topology: Optional[PowerTopology] = None
        # Optional faultable sensing path (chaos layer); None = exact.
        self.power_sensor: Optional[FaultyPowerSensor] = None
        self.staleness_bound_s: float = 5.0
        self._last_good_reading: Optional[SensorReading] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(
        self,
        engine: EventEngine,
        rack: Rack,
        budget: PowerBudget,
        battery: Optional[Battery],
        slot_s: float,
    ) -> None:
        """Attach the scheme to the simulated infrastructure."""
        if self.bound:
            raise RuntimeError(f"scheme {self.name!r} already bound")
        self.engine = engine
        self.rack = rack
        self.budget = budget
        self.battery = battery
        self.slot_s = float(slot_s)
        self.bound = True

    def bind_topology(self, topology: "PowerTopology") -> None:
        """Overlay a power tree on the bound rack.

        The tree adds the per-PDU protection sweep to every control
        slot (when the spec opts in): after the scheme's own step, each
        rack and row node whose subtree still exceeds its budget gets
        capped independently — PDU protection belongs to the
        infrastructure, so it runs under every scheme including
        :class:`NullScheme`.
        """
        self._require_bound()
        self.topology = topology

    def step(self) -> None:
        """One control-slot action.  Default: do nothing."""

    def slot_tick(self) -> None:
        """Instrumented per-slot entry point: observe, then :meth:`step`.

        Records the control-slot counters every scheme shares — slots
        ticked, budget violations seen at slot entry (the power the
        *previous* decision produced, matching the meter's view), and
        slots in which the step discharged the battery — then delegates
        to the scheme's :meth:`step`.  The simulation facade schedules
        this instead of ``step`` so the counters exist for every scheme
        without any per-scheme code.
        """
        self._require_bound()
        counters = self.engine.obs.counters
        counters.inc("power.control_slots")
        if self.budget.deficit(self.rack.total_power()) > 0.0:
            counters.inc("power.budget_violation_slots")
        if self.battery is not None:
            delivered_before_j = self.battery.delivered_j
            self.step()
            if self.battery.delivered_j > delivered_before_j:
                counters.inc("power.battery_discharge_slots")
        else:
            self.step()
        if self.topology is not None and self.topology.spec.enforce_levels:
            self._enforce_node_budgets()

    # ------------------------------------------------------------------
    # NLB hooks
    # ------------------------------------------------------------------
    def forwarding_policy(
        self, servers: Sequence["Server"]
    ) -> Optional[ForwardingPolicy]:
        """Scheme-specific NLB policy, or ``None`` for the default."""
        return None

    def admission_filter(self) -> Optional[AdmissionFilter]:
        """Scheme-specific NLB shaper, or ``None`` for pass-through."""
        return None

    # ------------------------------------------------------------------
    # Shared control arithmetic
    # ------------------------------------------------------------------
    def _require_bound(self) -> None:
        if not self.bound:
            raise RuntimeError(f"scheme {self.name!r} used before bind()")

    def attach_power_sensor(
        self, sensor: "FaultyPowerSensor", staleness_bound_s: float = 5.0
    ) -> None:
        """Route :meth:`current_power` through *sensor*.

        The degradation contract: an ``ok`` reading refreshes the
        last-known-good value; a missing (dropout) or old (stale) reading
        is answered with last-known-good while its age stays within
        *staleness_bound_s*; beyond the bound the scheme must assume the
        worst case — full rack nameplate — which forces a throttle
        rather than letting a blind controller exceed the budget.
        """
        check_positive("staleness_bound_s", staleness_bound_s)
        self.power_sensor = sensor
        self.staleness_bound_s = float(staleness_bound_s)
        self._last_good_reading = None

    def current_power(self) -> float:
        """Instantaneous rack power as the scheme perceives it.

        Exact (``rack.total_power()``) without an attached sensor;
        otherwise the sensed value under the bounded-staleness contract
        of :meth:`attach_power_sensor`.
        """
        self._require_bound()
        if self.power_sensor is None:
            return self.rack.total_power()
        return self._sensed_power()

    def _sensed_power(self) -> float:
        """Sensor path with last-known-good / worst-case fallbacks."""
        now = self.engine.now
        reading = self.power_sensor.read(now)
        counters = self.engine.obs.counters
        if reading.ok:
            self._last_good_reading = reading
        last = self._last_good_reading
        if last is not None and now - last.time_s <= self.staleness_bound_s:
            if not reading.ok:
                counters.inc("power.sensor_stale_fallbacks")
            return last.power_w
        counters.inc("power.sensor_worst_case_fallbacks")
        return self.rack.nameplate_w

    def deficit(self) -> float:
        """Watts above budget right now (zero when compliant)."""
        self._require_bound()
        return self.budget.deficit(self.current_power())

    def predict_power_at_level(
        self, level: int, servers: Optional[Sequence["Server"]] = None
    ) -> float:
        """Rack power if *servers* (default: all) moved to *level* now.

        Uses the servers' actual in-service request types, so the
        prediction is exact for the current instant — the idealised
        model-based capping controller the paper assumes RAPL provides.
        """
        self._require_bound()
        self.engine.obs.counters.inc("power.prediction_evals")
        pool = self.rack.servers if servers is None else list(servers)
        pool_ids = {s.server_id for s in pool}
        clamped = self.rack.ladder.clamp(level)
        total = 0.0
        for server in self.rack.servers:
            if server.server_id in pool_ids:
                # Count-based prediction against the cached physics
                # rows; like the per-type iteration it replaces, this
                # deliberately ignores health (a crashed pool server
                # predicts as its idle floor).
                total += server.power_at_level(clamped)
            else:
                total += server.current_power()
        return total

    # ------------------------------------------------------------------
    # Hierarchical (per-PDU) protection
    # ------------------------------------------------------------------
    def _enforce_node_budgets(self) -> None:
        """Cap every tree node whose subtree still exceeds its budget.

        Sweeps deepest nodes first (all racks, then rows; the feed is
        the scheme's own budget), re-reading subtree power after each
        cap so a parent only reacts to what its capped children still
        draw.  Levels only ever move *down* here — the scheme's global
        decision is a ceiling the PDU protection tightens per subtree.
        """
        counters = self.engine.obs.counters
        for node in self.topology.enforcement_order:
            servers = self.rack.servers[node.start : node.stop]
            power_w = 0.0
            for server in servers:
                power_w += server.current_power()
            if power_w <= node.budget_w:
                continue
            counters.inc(f"topology.cap_slots.{node.name}")
            target = self.highest_level_within_subtree(node.budget_w, servers)
            for server in servers:
                if server.level > target:
                    server.set_level(target)

    def predict_subtree_power_at_level(
        self, level: int, servers: Sequence["Server"]
    ) -> float:
        """Power of *servers* alone if all moved to *level* now.

        The subtree analogue of :meth:`predict_power_at_level`: sums
        only the given servers (a per-PDU budget constrains its own
        subtree, not the rack), and like it deliberately ignores health.
        """
        self._require_bound()
        self.engine.obs.counters.inc("power.prediction_evals")
        clamped = self.rack.ladder.clamp(level)
        total = 0.0
        for server in servers:
            total += server.power_at_level(clamped)
        return total

    def highest_level_within_subtree(
        self, cap_w: float, servers: Sequence["Server"]
    ) -> int:
        """Highest uniform level keeping *servers*' power ≤ *cap_w*."""
        self._require_bound()
        ladder = self.rack.ladder
        for level in range(ladder.max_level, -1, -1):
            if self.predict_subtree_power_at_level(level, servers) <= cap_w:
                return level
        return 0

    def highest_level_within(
        self,
        cap_w: float,
        servers: Optional[Sequence["Server"]] = None,
    ) -> int:
        """Highest uniform level keeping predicted rack power ≤ *cap_w*.

        Returns 0 (deepest throttle) when even the bottom of the ladder
        cannot satisfy the cap — power is then idle-floor dominated.
        """
        self._require_bound()
        ladder = self.rack.ladder
        for level in range(ladder.max_level, -1, -1):
            if self.predict_power_at_level(level, servers) <= cap_w:
                return level
        return 0


class NullScheme(PowerManagementScheme):
    """No power management at all — the unconstrained reference arm."""

    name = "none"


class UniformCappingMixin:
    """Shared "pick a uniform V/F level to satisfy a cap" step logic.

    Both Capping and the DVFS tail of Shaving need the same action:
    choose the highest ladder level whose predicted power fits under a
    cap and apply it to a server set, with a small hysteresis band so
    the controller does not chatter between adjacent levels.
    """

    #: Fraction of the budget kept as a raise-guard band.
    hysteresis: float = 0.02

    def apply_uniform_cap(
        self,
        cap_w: float,
        servers: Optional[Sequence["Server"]] = None,
    ) -> int:
        """Move *servers* to the best uniform level for *cap_w*.

        Returns the level chosen.  Raising frequency only happens when
        the predicted power at the higher level stays below the cap
        minus the hysteresis band.
        """
        self._require_bound()  # type: ignore[attr-defined]
        rack: Rack = self.rack  # type: ignore[attr-defined]
        pool = rack.servers if servers is None else list(servers)
        if not pool:
            return rack.ladder.max_level
        current = min(s.level for s in pool)
        target = self.highest_level_within(cap_w, pool)  # type: ignore[attr-defined]
        if target > current:
            # Raising: demand a hysteresis margin to avoid chatter.
            guard = cap_w * (1.0 - self.hysteresis)
            while target > current and self.predict_power_at_level(  # type: ignore[attr-defined]
                target, pool
            ) > guard:
                target -= 1
        for server in pool:
            server.set_level(target)
        return target
