"""Facility-level power budget allocation.

Oversubscription in real data centers is hierarchical: a facility feed
is oversubscribed across PDUs, each PDU across racks.  The paper's rack
budget (Normal/High/Medium/Low-PB) is the leaf of that hierarchy; this
module supplies the layer above it so multi-rack scenarios — e.g. a
DOPE flood steered at one rack stealing headroom from its neighbours —
can be expressed.

:class:`FacilityBudgetAllocator` redistributes a facility budget across
racks with demand-proportional *water-filling*: every rack is
guaranteed a floor (so a starved rack can always serve something), the
remainder is divided proportionally to measured demand, and no rack is
allocated more than it asks for — surplus is re-offered to still-hungry
racks.  The result feeds each rack's own
:class:`~repro.power.budget.PowerBudget` each re-plan interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .._validation import check_fraction, check_positive, require

__all__ = [
    "RackAllocation",
    "FacilityBudgetAllocator",
]


@dataclass(frozen=True)
class RackAllocation:
    """One rack's share of the facility budget."""

    rack_id: int
    demand_w: float
    allocated_w: float

    @property
    def satisfied(self) -> bool:
        """True when the rack got everything it asked for."""
        return self.allocated_w >= self.demand_w - 1e-9


class FacilityBudgetAllocator:
    """Demand-proportional water-filling over a set of racks.

    Parameters
    ----------
    facility_budget_w:
        Total power the facility feed can supply.
    floor_fraction:
        Fraction of the facility budget reserved as equal per-rack
        floors (keeps starved racks alive).  The floors themselves are
        capped at each rack's demand.
    """

    def __init__(
        self, facility_budget_w: float, floor_fraction: float = 0.2
    ) -> None:
        check_positive("facility_budget_w", facility_budget_w)
        check_fraction("floor_fraction", floor_fraction)
        self.facility_budget_w = float(facility_budget_w)
        self.floor_fraction = float(floor_fraction)

    def allocate(self, demands_w: Sequence[float]) -> List[RackAllocation]:
        """Split the facility budget across racks demanding *demands_w*.

        Guarantees (see the property tests):

        * allocations are non-negative and never exceed demand;
        * the total never exceeds the facility budget;
        * if total demand fits, every rack is fully satisfied;
        * allocation is monotone: a rack never receives less than a
          rack with smaller demand.
        """
        require(len(demands_w) > 0, "need at least one rack")
        demands = [max(0.0, float(d)) for d in demands_w]
        n = len(demands)
        total_demand = sum(demands)
        if total_demand <= self.facility_budget_w:
            return [
                RackAllocation(i, demands[i], demands[i]) for i in range(n)
            ]

        # Floors: equal shares of the reserved slice, capped at demand.
        floor_each = (self.facility_budget_w * self.floor_fraction) / n
        alloc = [min(floor_each, demands[i]) for i in range(n)]
        remaining = self.facility_budget_w - sum(alloc)

        # Proportional water-fill of the remainder, re-offering any
        # surplus from racks that hit their demand cap.
        hungry = [i for i in range(n) if alloc[i] < demands[i]]
        while remaining > 1e-9 and hungry:
            weight = sum(demands[i] - alloc[i] for i in hungry)
            if weight <= 0:
                break
            next_hungry = []
            distributed = 0.0
            for i in hungry:
                gap = demands[i] - alloc[i]
                share = remaining * gap / weight
                grant = min(gap, share)
                alloc[i] += grant
                distributed += grant
                if alloc[i] < demands[i] - 1e-9:
                    next_hungry.append(i)
            remaining -= distributed
            if distributed <= 1e-12:
                break
            hungry = next_hungry

        return [RackAllocation(i, demands[i], alloc[i]) for i in range(n)]

    def allocate_map(self, demands_w: Dict[int, float]) -> Dict[int, float]:
        """Dict-keyed convenience wrapper around :meth:`allocate`."""
        keys = sorted(demands_w)
        allocations = self.allocate([demands_w[k] for k in keys])
        return {k: a.allocated_w for k, a in zip(keys, allocations)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FacilityBudgetAllocator({self.facility_budget_w:.0f}W, "
            f"floor={self.floor_fraction:.0%})"
        )
