"""Shaving: UPS-based peak shaving (Table 2, row 2).

The state-of-the-art alternative in the paper (after Govindan et al.,
ASPLOS'12 and Wang et al., ASPLOS'14): power peaks above the budget are
carried by discharging the rack UPS, and DVFS is engaged *only when the
battery runs out*.  Against the short, occasional peaks that motivated
the design this works beautifully; against a sustained DOPE peak the
battery drains within minutes (Fig. 18's steep blue line) and the
scheme degenerates into Capping with a delay.
"""

from __future__ import annotations

from .._validation import check_int
from .manager import PowerManagementScheme, UniformCappingMixin

__all__ = ["ShavingScheme"]


class ShavingScheme(UniformCappingMixin, PowerManagementScheme):
    """UPS-first peak shaving with a DVFS fallback.

    Parameters
    ----------
    recharge_headroom_fraction:
        Fraction of spare budget headroom offered to the battery for
        recharging each slot (recharging competes with serving load).
    soc_reserve:
        SoC fraction below which the battery is considered exhausted
        for shaving purposes (emergency ride-through reserve).
    hysteresis:
        Raise-guard band for the DVFS fallback controller.
    full_carry:
        When True (default), a budget violation flips the rack UPS into
        battery mode and the battery carries the *entire* rack load for
        the slot — the behaviour behind the paper's "mini battery which
        can sustain 2 minutes when supporting all the web application
        nodes" and the steep exhaustion in Fig. 18.  When False, the
        battery supplies only the deficit above the budget (partial
        sourcing, as in virtualised power architectures).
    max_decisions:
        Maximum per-slot decision tuples retained in ``decisions`` (the
        oldest are discarded first) — a multi-hour run would otherwise
        grow the trace without bound while the exact slot totals
        already live in the ``power.control_slots`` /
        ``power.battery_discharge_slots`` counters.
    """

    name = "shaving"

    def __init__(
        self,
        recharge_headroom_fraction: float = 0.5,
        soc_reserve: float = 0.05,
        hysteresis: float = 0.02,
        full_carry: bool = True,
        max_decisions: int = 1024,
    ) -> None:
        super().__init__()
        if not 0.0 <= recharge_headroom_fraction <= 1.0:
            raise ValueError(
                "recharge_headroom_fraction must be in [0, 1], "
                f"got {recharge_headroom_fraction}"
            )
        if not 0.0 <= soc_reserve < 1.0:
            raise ValueError(f"soc_reserve must be in [0, 1), got {soc_reserve}")
        if not 0.0 <= hysteresis < 0.5:
            raise ValueError(f"hysteresis must be in [0, 0.5), got {hysteresis}")
        check_int("max_decisions", max_decisions, minimum=0)
        self.recharge_headroom_fraction = recharge_headroom_fraction
        self.soc_reserve = soc_reserve
        self.hysteresis = hysteresis
        self.full_carry = full_carry
        self.max_decisions = max_decisions
        #: Per-slot (time, deficit_w, battery_w, dvfs_level) decisions —
        #: a bounded trace of the most recent ``max_decisions`` slots.
        self.decisions = []

    def bind(self, engine, rack, budget, battery, slot_s) -> None:
        """Attach infrastructure; Shaving additionally requires a battery."""
        super().bind(engine, rack, budget, battery, slot_s)
        if self.battery is None:
            raise ValueError("ShavingScheme requires a battery")

    def step(self) -> None:
        """Shave with the UPS; fall back to DVFS when it is exhausted."""
        self._require_bound()
        battery = self.battery
        power_w = self.current_power()
        deficit = self.budget.deficit(power_w)
        level = self.rack.ladder.max_level
        battery_w = 0.0
        if deficit > 0:
            usable_soc = max(0.0, battery.soc_fraction - self.soc_reserve)
            usable_j = usable_soc * battery.capacity_j
            available_w = min(battery.max_discharge_w, usable_j / self.slot_s)
            # In full-carry (UPS battery) mode the whole rack load moves
            # onto the battery during the violation slot; in partial
            # mode the battery supplies only the excess over the budget.
            demand_w = power_w if self.full_carry else deficit
            if available_w >= demand_w:
                battery_w = battery.discharge(demand_w, self.slot_s)
                # Peak fully shaved: make sure servers run at nominal.
                self.rack.set_all_levels(self.rack.ladder.max_level)
            else:
                # Battery exhausted: discharge what little remains and
                # cap the rest with DVFS, exactly "trigger DVFS only if
                # the UPS runs out of energy".
                topup_w = battery.discharge(min(available_w, deficit), self.slot_s)
                battery_w = topup_w
                level = self.apply_uniform_cap(self.budget.supply_w + topup_w)
        else:
            # Recover performance first, then offer the battery only the
            # headroom that remains *after* the DVFS raise.  Charging
            # against the pre-raise (possibly deeply throttled) power
            # reading would commit a grid draw that, added to the raised
            # rack power, pushes the slot over budget.
            level = self.apply_uniform_cap(self.budget.supply_w)
            headroom = max(0.0, self.budget.headroom(self.current_power()))
            charge_w = min(
                headroom * self.recharge_headroom_fraction, headroom
            )
            battery.charge(charge_w, self.slot_s)
        self.decisions.append((self.engine.now, deficit, battery_w, level))
        if len(self.decisions) > self.max_decisions:
            del self.decisions[: len(self.decisions) - self.max_decisions]
