"""Token: a power-based token bucket at the NLB (Table 2, row 3).

The paper's representative network-side defence: a token-bucket traffic
shaper whose tokens are denominated in *joules* instead of packets.
The bucket refills at the budget's dynamic-energy rate (supply minus
the rack idle floor); each admitted request pre-pays its estimated
per-request energy, and requests that cannot pay are discarded at the
balancer.

This guarantees the power limit on average, but because the shaper
cannot tell a 0.05 γ volume packet from a 1.0 γ Colla-Filt query's
*legitimate* twin, under a DOPE flood it "abandons more than 60 % of
the packages to satisfy the power limit" (Section 6.3) — good latency
for the survivors, terrible availability.
"""

from __future__ import annotations

from typing import Optional

from .._validation import check_positive
from ..network.request import Request
from .manager import PowerManagementScheme

__all__ = [
    "PowerTokenBucket",
    "TokenScheme",
]


class PowerTokenBucket:
    """Joule-denominated token bucket (an NLB admission filter).

    Parameters
    ----------
    refill_rate_w:
        Token inflow in watts (joules/second) — the dynamic power the
        budget can afford.
    burst_s:
        Bucket depth expressed in seconds of refill (controls how large
        a transient the shaper absorbs before dropping).
    energy_cost_fn:
        Maps a request to its token cost in joules.
    """

    def __init__(self, refill_rate_w: float, burst_s: float, energy_cost_fn) -> None:
        check_positive("refill_rate_w", refill_rate_w)
        check_positive("burst_s", burst_s)
        self.refill_rate_w = float(refill_rate_w)
        self.capacity_j = self.refill_rate_w * float(burst_s)
        self.energy_cost_fn = energy_cost_fn
        self.tokens_j = self.capacity_j
        self._last_refill = 0.0
        self.admitted = 0
        self.dropped = 0

    def admit(self, request: Request, now: float) -> bool:
        """Charge the request's energy cost; drop when the bucket is dry."""
        self._refill(now)
        cost = float(self.energy_cost_fn(request))
        if cost < 0:
            raise ValueError(f"negative energy cost {cost} for {request!r}")
        if self.tokens_j >= cost:
            self.tokens_j -= cost
            self.admitted += 1
            return True
        self.dropped += 1
        return False

    def _refill(self, now: float) -> None:
        dt = now - self._last_refill
        if dt > 0:
            self.tokens_j = min(
                self.capacity_j, self.tokens_j + dt * self.refill_rate_w
            )
            self._last_refill = now

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered requests discarded so far."""
        total = self.admitted + self.dropped
        return self.dropped / total if total else 0.0


class TokenScheme(PowerManagementScheme):
    """Power-based token-bucket traffic control.

    Purely network-side: servers always run at nominal frequency and
    the budget is enforced by refusing admission.  The per-request cost
    is the power model's closed-form energy estimate at nominal
    frequency — the same offline profile Anti-DOPE's suspect list uses.

    Parameters
    ----------
    burst_s:
        Bucket depth in seconds of refill.
    safety_factor:
        Fraction of the budget's dynamic headroom actually handed out
        as tokens.  A shaper sized to the *average* headroom still lets
        instantaneous peaks through, so real deployments run
        conservative; the paper's ">60 % of the packages" abandonment
        under flood reflects exactly this conservatism.
    """

    name = "token"

    def __init__(self, burst_s: float = 2.0, safety_factor: float = 0.6) -> None:
        super().__init__()
        check_positive("burst_s", burst_s)
        if not 0.0 < safety_factor <= 1.0:
            raise ValueError(f"safety_factor must be in (0, 1], got {safety_factor}")
        self.burst_s = float(burst_s)
        self.safety_factor = float(safety_factor)
        self.bucket: Optional[PowerTokenBucket] = None

    def bind(self, engine, rack, budget, battery, slot_s) -> None:
        """Attach infrastructure and size the bucket from the budget."""
        super().bind(engine, rack, budget, battery, slot_s)
        idle_floor = rack.idle_floor()
        refill = max(1e-6, (budget.supply_w - idle_floor) * self.safety_factor)
        model = rack.power_model

        def cost(request: Request) -> float:
            """Token price: the request's model energy at nominal f."""
            return model.energy_per_request(request.rtype, 1.0)

        self.bucket = PowerTokenBucket(refill, self.burst_s, cost)
        self.bucket._last_refill = engine.now

    def admission_filter(self) -> Optional[PowerTokenBucket]:
        """The power token bucket (installed on the NLB)."""
        self._require_bound()
        return self.bucket

    def step(self) -> None:
        """Keep servers at nominal — the scheme never throttles."""
        self._require_bound()
        self.rack.set_all_levels(self.rack.ladder.max_level)
