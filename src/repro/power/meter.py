"""Power metering: the time series every figure is drawn from.

The meter samples the rack (and optionally the battery) on a fixed
interval using a monitor-priority event, so each sample observes all
workload activity of its instant but precedes the control action of the
same slot — i.e. it sees the power the *previous* control decision
produced, like a real out-of-band BMC poll.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from .._validation import check_positive
from ..sim.events import PRIORITY_MONITOR
from .battery import Battery

__all__ = [
    "PowerSample",
    "PowerMeter",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.rack import Rack
    from ..sim.engine import EventEngine


class PowerSample:
    """One metering snapshot."""

    __slots__ = ("time_s", "power_w", "mean_level", "battery_soc")

    def __init__(
        self,
        time_s: float,
        power_w: float,
        mean_level: float,
        battery_soc: Optional[float],
    ) -> None:
        self.time_s = time_s
        self.power_w = power_w
        self.mean_level = mean_level
        self.battery_soc = battery_soc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        soc = "-" if self.battery_soc is None else f"{self.battery_soc:.2f}"
        return (
            f"PowerSample(t={self.time_s:.1f}, P={self.power_w:.1f}W, soc={soc})"
        )


class PowerMeter:
    """Fixed-interval sampler of rack power, DVFS level and battery SoC.

    Parameters
    ----------
    engine, rack:
        Simulation engine and the rack to observe.
    interval_s:
        Sampling period (default 1 s — the paper's time-slot).
    battery:
        Optional battery whose SoC is recorded alongside power.
    """

    def __init__(
        self,
        engine: EventEngine,
        rack: Rack,
        interval_s: float = 1.0,
        battery: Optional[Battery] = None,
    ) -> None:
        check_positive("interval_s", interval_s)
        self.engine = engine
        self.rack = rack
        self.interval_s = float(interval_s)
        self.battery = battery
        self.samples: List[PowerSample] = []
        self._stop: Optional[Callable[[], None]] = None

    def start(self, sample_now: bool = True) -> None:
        """Begin sampling (optionally taking an immediate first sample)."""
        if self._stop is not None:
            raise RuntimeError("meter already started")
        if sample_now:
            self.sample()
        self._stop = self.engine.every(
            self.interval_s, self.sample, priority=PRIORITY_MONITOR
        )

    def stop(self) -> None:
        """Stop sampling."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    def sample(self) -> PowerSample:
        """Take one snapshot immediately and append it to the history."""
        soc = self.battery.soc_fraction if self.battery is not None else None
        sample = PowerSample(
            time_s=self.engine.now,
            power_w=self.rack.total_power(),
            mean_level=float(np.mean(self.rack.levels())),
            battery_soc=soc,
        )
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------
    # History access (vectorised)
    # ------------------------------------------------------------------
    def times(self) -> np.ndarray:
        """Sample timestamps (seconds)."""
        return np.array([s.time_s for s in self.samples])

    def powers(self) -> np.ndarray:
        """Sampled rack power (watts)."""
        return np.array([s.power_w for s in self.samples])

    def mean_levels(self) -> np.ndarray:
        """Sampled rack-mean DVFS level."""
        return np.array([s.mean_level for s in self.samples])

    def socs(self) -> np.ndarray:
        """Sampled battery SoC fractions (NaN when no battery attached)."""
        return np.array(
            [np.nan if s.battery_soc is None else s.battery_soc for s in self.samples]
        )

    def peak_power(self) -> float:
        """Maximum sampled power."""
        if not self.samples:
            raise RuntimeError("no samples collected")
        return float(self.powers().max())

    def mean_power(self) -> float:
        """Average sampled power."""
        if not self.samples:
            raise RuntimeError("no samples collected")
        return float(self.powers().mean())

    def time_over(self, threshold_w: float) -> float:
        """Seconds of sampled time with power above *threshold_w*."""
        if len(self.samples) < 2:
            return 0.0
        powers = self.powers()
        return float(np.sum(powers[:-1] > threshold_w) * self.interval_s)

    def window(self, start_s: float, end_s: float) -> "PowerMeter":
        """A detached meter view holding only samples in ``[start, end)``."""
        view = PowerMeter(self.engine, self.rack, self.interval_s, self.battery)
        view.samples = [s for s in self.samples if start_s <= s.time_s < end_s]
        return view

    def __len__(self) -> int:
        return len(self.samples)
