"""Capping: DVFS-only peak power management (Table 2, row 1).

The traditional design the paper baselines against: every control slot,
if rack power exceeds the budget, *all* servers are throttled to the
highest uniform V/F level that fits — blind to which requests caused
the peak.  That blindness is exactly what DOPE exploits: attack
requests drag every legitimate request down with them (Figs 7, 16, 17).
"""

from __future__ import annotations

from .manager import PowerManagementScheme, UniformCappingMixin

__all__ = [
    "CappingScheme",
    "LocalCappingScheme",
]


class CappingScheme(UniformCappingMixin, PowerManagementScheme):
    """Performance-scaling-only power capping.

    Parameters
    ----------
    hysteresis:
        Raise-guard band as a fraction of the budget (prevents level
        chatter around the cap).
    """

    name = "capping"

    def __init__(self, hysteresis: float = 0.02) -> None:
        super().__init__()
        if not 0.0 <= hysteresis < 0.5:
            raise ValueError(f"hysteresis must be in [0, 0.5), got {hysteresis}")
        self.hysteresis = hysteresis
        #: Per-slot record of (time, level) control decisions.
        self.decisions = []

    def step(self) -> None:
        """Throttle (or recover) every server to fit the budget."""
        self._require_bound()
        level = self.apply_uniform_cap(self.budget.supply_w)
        self.decisions.append((self.engine.now, level))


class LocalCappingScheme(PowerManagementScheme):
    """Decentralised capping: each server enforces its fair share.

    Instead of one rack-level controller choosing a uniform V/F point,
    every server independently caps itself at ``budget / num_servers``.
    This is how static per-node power caps (BIOS/BMC limits) behave and
    it exhibits the classic *power fragmentation* problem the paper's
    related work discusses (Hsu et al., ASPLOS'18): headroom stranded
    on lightly loaded servers cannot help heavily loaded ones, so the
    rack under-uses its budget while hot nodes over-throttle.

    Included as a comparison arm for the fragmentation ablation; not
    one of the paper's Table-2 schemes.
    """

    name = "local-capping"

    def __init__(self, hysteresis: float = 0.02) -> None:
        super().__init__()
        if not 0.0 <= hysteresis < 0.5:
            raise ValueError(f"hysteresis must be in [0, 0.5), got {hysteresis}")
        self.hysteresis = hysteresis
        self.decisions = []

    def step(self) -> None:
        """Each server independently fits under its static share."""
        self._require_bound()
        share = self.budget.supply_w / self.rack.num_servers
        guard = share * (1.0 - self.hysteresis)
        levels = []
        for server in self.rack.servers:
            ladder = server.ladder
            target = 0
            for level in range(ladder.max_level, -1, -1):
                ratio = ladder.ratio(level)
                types = (e.request.rtype for e in server._active.values())
                power_w = server.power_model.power(types, ratio)
                limit = guard if level > server.level else share
                if power_w <= limit:
                    target = level
                    break
            server.set_level(target)
            levels.append(target)
        self.decisions.append((self.engine.now, tuple(levels)))
