"""Power budgets and the paper's provisioning scenarios.

The paper evaluates four supply levels, all relative to the rack's
"100 % supplied power" baseline:

========== =================== =========================
Scenario   Fraction of normal  Meaning
========== =================== =========================
Normal-PB  1.00                fully provisioned
High-PB    0.90                mild oversubscription
Medium-PB  0.85                moderate oversubscription
Low-PB     0.80                aggressive oversubscription
========== =================== =========================

:class:`PowerBudget` is the runtime object every power manager enforces
against; :class:`BudgetLevel` names the four scenarios so sweeps and
benches can iterate them declaratively.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable

from .._validation import check_positive

__all__ = [
    "BudgetLevel",
    "PowerBudget",
]


class BudgetLevel(enum.Enum):
    """The paper's four provisioning scenarios (Section 3.3)."""

    NORMAL = "normal-pb"
    HIGH = "high-pb"
    MEDIUM = "medium-pb"
    LOW = "low-pb"

    @property
    def fraction(self) -> float:
        """Budget as a fraction of the fully provisioned supply."""
        return _FRACTIONS[self]


_FRACTIONS: Dict[BudgetLevel, float] = {
    BudgetLevel.NORMAL: 1.00,
    BudgetLevel.HIGH: 0.90,
    BudgetLevel.MEDIUM: 0.85,
    BudgetLevel.LOW: 0.80,
}


class PowerBudget:
    """A hard cap on simultaneous rack power draw.

    Parameters
    ----------
    supply_w:
        Provisioned power in watts.
    level:
        Optional scenario tag for reporting.
    """

    __slots__ = ("supply_w", "level")

    def __init__(self, supply_w: float, level: BudgetLevel = BudgetLevel.NORMAL):
        check_positive("supply_w", supply_w)
        self.supply_w = float(supply_w)
        self.level = level

    @classmethod
    def for_level(cls, level: BudgetLevel, normal_supply_w: float) -> "PowerBudget":
        """Build the budget for *level* given the Normal-PB supply."""
        check_positive("normal_supply_w", normal_supply_w)
        return cls(normal_supply_w * level.fraction, level)

    @classmethod
    def all_levels(
        cls, normal_supply_w: float, levels: Iterable[BudgetLevel] = BudgetLevel
    ) -> Dict[BudgetLevel, "PowerBudget"]:
        """Budgets for every scenario — the benches' sweep axis."""
        return {lvl: cls.for_level(lvl, normal_supply_w) for lvl in levels}

    def headroom(self, power_w: float) -> float:
        """Watts of unused supply (negative ⇒ violation)."""
        return self.supply_w - power_w

    def deficit(self, power_w: float) -> float:
        """Watts above the cap (zero when within budget)."""
        return max(0.0, power_w - self.supply_w)

    def violated(self, power_w: float, tolerance_w: float = 0.0) -> bool:
        """True when *power_w* exceeds the cap by more than *tolerance_w*."""
        return power_w > self.supply_w + tolerance_w

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PowerBudget({self.supply_w:.0f}W, {self.level.value})"
