"""Power infrastructure: budgets, batteries, meters and Table 2 schemes."""

from .battery import Battery
from .budget import BudgetLevel, PowerBudget
from .capping import CappingScheme, LocalCappingScheme
from .hierarchy import FacilityBudgetAllocator, RackAllocation
from .manager import NullScheme, PowerManagementScheme
from .meter import PowerMeter, PowerSample
from .prediction import (
    PowerHistoryPredictor,
    PredictedHeadroomFilter,
    PredictionScheme,
)
from .shaving import ShavingScheme
from .token_bucket import PowerTokenBucket, TokenScheme

__all__ = [
    "PowerBudget",
    "BudgetLevel",
    "Battery",
    "PowerMeter",
    "PowerSample",
    "PowerManagementScheme",
    "NullScheme",
    "CappingScheme",
    "LocalCappingScheme",
    "ShavingScheme",
    "TokenScheme",
    "PowerTokenBucket",
    "PowerHistoryPredictor",
    "PredictedHeadroomFilter",
    "PredictionScheme",
    "FacilityBudgetAllocator",
    "RackAllocation",
]
