"""Prediction: history-driven oversubscription (the sixth scheme).

The Kumbhare et al. approach ("Prediction-Based Power Oversubscription
in Cloud Platforms", ATC'21; ROADMAP item 4): instead of admitting and
throttling against the nameplate or the instantaneous meter, the
controller keeps a streaming percentile estimate of the rack's recent
power history and treats *predicted* draw as the planning signal.  When
the history says the rack has never come close to the provisioned
supply, the controller oversubscribes harder — it inflates the
*effective* budget the admission path is sized against — and it backs
off through graded tiers (warn → soft cap → hard cap) as the predicted
draw approaches the real supply.

The scheme is deliberately faithful to the production design's
safeguards, because those safeguards are exactly what the
``predictor-poison`` attack mode of :class:`~repro.workloads.dope
.DopeAttacker` probes:

* the prediction is **floored at the observed maximum**, but the floor
  *decays* over ``horizon_s`` (old peaks stop haunting the forecast);
* the prediction moves with a **clamped step size** (meter noise must
  not whipsaw the budget), so a synchronized flood outruns the
  forecast for many control slots.

An attacker who shapes sustained low-draw traffic for longer than the
horizon therefore walks the percentile *and* the decayed floor down,
inflates the effective budget, and then floods into headroom that was
never real — the rack violates the true supply while the predicted-draw
budget still reports healthy.  The ``predict.blind_violation_slots``
counter makes that window measurable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .._validation import check_fraction, check_positive, require
from ..network.request import Request
from .manager import PowerManagementScheme, UniformCappingMixin
from .token_bucket import PowerTokenBucket

__all__ = [
    "PowerHistoryPredictor",
    "PredictedHeadroomFilter",
    "PredictionScheme",
    "TIER_HEALTHY",
    "TIER_WARN",
    "TIER_SOFT",
    "TIER_HARD",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass

#: Graded throttle-tier names (reported per slot and in :meth:`report`).
TIER_HEALTHY = "healthy"
TIER_WARN = "warn"
TIER_SOFT = "soft-cap"
TIER_HARD = "hard-cap"


class PowerHistoryPredictor:
    """Streaming per-rack power forecast in O(1) memory.

    Three coupled estimators, each one float of state:

    * an **exponentially-weighted quantile** of the observed power
      (Robbins-Monro pinball steps: an observation above the estimate
      moves it up by ``step_w·q``, one below moves it down by
      ``step_w·(1-q)`` — the stationary point is the q-quantile);
    * a **decaying observed-max floor**: the forecast never drops below
      the largest recent observation, but the floor fades at
      ``floor_decay_w_per_s`` so a peak older than roughly the history
      horizon stops propping the forecast up;
    * the **published prediction**, which chases
      ``max(quantile, floor)`` under a clamped step
      (``max_step_up_w_per_s`` / ``max_step_down_w_per_s``) so meter
      noise cannot whipsaw the downstream budget.

    Purely arithmetic — no RNG, no wall clock — so same-seed runs stay
    byte-identical in every engine mode.
    """

    def __init__(
        self,
        quantile: float = 0.99,
        initial_w: float = 0.0,
        step_w: float = 4.0,
        floor_decay_w_per_s: float = 5.0,
        max_step_up_w_per_s: float = 20.0,
        max_step_down_w_per_s: float = 8.0,
    ) -> None:
        check_fraction("quantile", quantile, inclusive=False)
        check_positive("step_w", step_w)
        check_positive("floor_decay_w_per_s", floor_decay_w_per_s)
        check_positive("max_step_up_w_per_s", max_step_up_w_per_s)
        check_positive("max_step_down_w_per_s", max_step_down_w_per_s)
        require(initial_w >= 0.0, f"initial_w must be >= 0, got {initial_w}")
        self.quantile = float(quantile)
        self.step_w = float(step_w)
        self.floor_decay_w_per_s = float(floor_decay_w_per_s)
        self.max_step_up_w_per_s = float(max_step_up_w_per_s)
        self.max_step_down_w_per_s = float(max_step_down_w_per_s)
        self.quantile_estimate_w = float(initial_w)
        self.floor_w = float(initial_w)
        self.prediction_w = float(initial_w)
        self.observations = 0

    def observe(self, power_w: float, dt_s: float) -> float:
        """Fold one power sample in; return the updated prediction."""
        check_positive("dt_s", dt_s)
        require(power_w >= 0.0, f"power_w must be >= 0, got {power_w}")
        if self.observations == 0:
            # Snap to the first sample: a cold estimator chasing an
            # arbitrary init through clamped steps would spend the whole
            # warm-up window reporting a fiction.
            self.quantile_estimate_w = power_w
            self.floor_w = power_w
        else:
            self.floor_w = max(
                power_w, self.floor_w - self.floor_decay_w_per_s * dt_s
            )
            if power_w > self.quantile_estimate_w:
                self.quantile_estimate_w += self.step_w * self.quantile
            else:
                self.quantile_estimate_w -= self.step_w * (1.0 - self.quantile)
            self.quantile_estimate_w = max(0.0, self.quantile_estimate_w)
        self.observations += 1
        target_w = max(self.quantile_estimate_w, self.floor_w)
        delta_w = target_w - self.prediction_w
        max_up_w = self.max_step_up_w_per_s * dt_s
        max_down_w = self.max_step_down_w_per_s * dt_s
        if delta_w > max_up_w:
            delta_w = max_up_w
        elif delta_w < -max_down_w:
            delta_w = -max_down_w
        self.prediction_w += delta_w
        return self.prediction_w

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PowerHistoryPredictor(q{self.quantile:.2f}="
            f"{self.quantile_estimate_w:.1f}W, floor={self.floor_w:.1f}W, "
            f"prediction={self.prediction_w:.1f}W, n={self.observations})"
        )


class PredictedHeadroomFilter(PowerTokenBucket):
    """A joule bucket whose refill tracks the predicted headroom.

    Structurally the Token scheme's shaper, but the refill rate is not
    fixed at bind time: :class:`PredictionScheme` re-points it every
    control slot at the dynamic headroom of the *effective* (history-
    inflated) budget.  Tokens accrued under the old rate are settled
    before the switch, so the slot boundary is exact.
    """

    def set_refill_rate_w(self, rate_w: float, now: float) -> None:
        """Re-target the refill at *rate_w* (settling accrual first)."""
        self._refill(now)
        self.refill_rate_w = max(1e-6, float(rate_w))


class PredictionScheme(UniformCappingMixin, PowerManagementScheme):
    """Prediction-based oversubscription (Table 2, sixth row).

    Every control slot feeds the sensed rack power into the
    :class:`PowerHistoryPredictor`, recomputes the effective budget

    ``effective = min(nameplate, supply + gain·max(0, supply − predicted))``

    (predicted draw below supply *earns* extra oversubscription — the
    Azure bet), re-points the admission bucket at the effective
    dynamic headroom, and then acts on the predicted-vs-supply ratio
    through a graded tier ladder:

    * ``healthy`` (ratio < *warn_fraction*): raise all servers one
      ladder step toward nominal — the prediction says the budget is
      safe, so performance recovers;
    * ``warn`` (< 1): hold levels;
    * ``soft-cap`` (< *hard_fraction*): step all servers down one
      level;
    * ``hard-cap`` (≥ *hard_fraction*): fall back to measured-power
      uniform capping against the true supply.

    The ladder is keyed on the **prediction**, not the meter — that is
    the scheme's entire premise and its attack surface.  Slots where
    the measured power violates the true supply while the prediction
    still reads below it are counted in
    ``predict.blind_violation_slots``.

    Parameters
    ----------
    quantile:
        History percentile the forecast tracks (default P99).
    horizon_s:
        History horizon: the observed-max floor decays from nameplate
        to zero over roughly this many seconds, and the quantile step
        is sized so the estimate can traverse the nameplate range in
        the same window.
    warn_fraction / hard_fraction:
        Tier thresholds on predicted/supply.
    ramp_up_fraction / ramp_down_fraction:
        Clamp on the per-second prediction step, as a fraction of rack
        nameplate (up: chasing a flood; down: decaying after one).
    oversubscription_gain:
        Watts of extra effective budget granted per watt of predicted
        headroom (0 disables the oversubscription inflation entirely).
    burst_s:
        Admission-bucket depth in seconds of refill.
    hysteresis:
        Raise-guard band of the hard-cap fallback controller.
    """

    name = "prediction"

    def __init__(
        self,
        quantile: float = 0.99,
        horizon_s: float = 60.0,
        warn_fraction: float = 0.92,
        hard_fraction: float = 1.05,
        ramp_up_fraction: float = 0.05,
        ramp_down_fraction: float = 0.02,
        oversubscription_gain: float = 1.0,
        burst_s: float = 2.0,
        hysteresis: float = 0.02,
    ) -> None:
        super().__init__()
        check_fraction("quantile", quantile, inclusive=False)
        check_positive("horizon_s", horizon_s)
        check_fraction("warn_fraction", warn_fraction, inclusive=False)
        check_positive("hard_fraction", hard_fraction)
        require(
            hard_fraction >= 1.0,
            f"hard_fraction must be >= 1, got {hard_fraction}",
        )
        check_fraction("ramp_up_fraction", ramp_up_fraction, inclusive=False)
        check_fraction("ramp_down_fraction", ramp_down_fraction, inclusive=False)
        require(
            oversubscription_gain >= 0.0,
            f"oversubscription_gain must be >= 0, got {oversubscription_gain}",
        )
        check_positive("burst_s", burst_s)
        check_fraction("hysteresis", hysteresis)
        self.quantile = float(quantile)
        self.horizon_s = float(horizon_s)
        self.warn_fraction = float(warn_fraction)
        self.hard_fraction = float(hard_fraction)
        self.ramp_up_fraction = float(ramp_up_fraction)
        self.ramp_down_fraction = float(ramp_down_fraction)
        self.oversubscription_gain = float(oversubscription_gain)
        self.burst_s = float(burst_s)
        self.hysteresis = float(hysteresis)
        self.predictor: Optional[PowerHistoryPredictor] = None
        self.filter: Optional[PredictedHeadroomFilter] = None
        self.last_tier: str = TIER_HARD

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, engine, rack, budget, battery, slot_s) -> None:
        """Attach infrastructure; size the predictor and the bucket."""
        super().bind(engine, rack, budget, battery, slot_s)
        nameplate_w = rack.nameplate_w
        self.predictor = PowerHistoryPredictor(
            quantile=self.quantile,
            # Start pessimistic at nameplate: until history accrues the
            # scheme behaves like conservative capping, then earns its
            # oversubscription as the forecast ramps down.
            initial_w=nameplate_w,
            step_w=nameplate_w * self.slot_s / self.horizon_s,
            floor_decay_w_per_s=nameplate_w / self.horizon_s,
            max_step_up_w_per_s=nameplate_w * self.ramp_up_fraction
            / self.slot_s,
            max_step_down_w_per_s=nameplate_w * self.ramp_down_fraction
            / self.slot_s,
        )
        model = rack.power_model

        def cost(request: Request) -> float:
            """Token price: the request's model energy at nominal f."""
            return model.energy_per_request(request.rtype, 1.0)

        idle_floor_w = rack.idle_floor()
        self.filter = PredictedHeadroomFilter(
            refill_rate_w=max(1e-6, budget.supply_w - idle_floor_w),
            burst_s=self.burst_s,
            energy_cost_fn=cost,
        )
        self.filter._last_refill = engine.now

    def admission_filter(self) -> Optional[PredictedHeadroomFilter]:
        """The predicted-headroom bucket (installed on the NLB)."""
        self._require_bound()
        return self.filter

    # ------------------------------------------------------------------
    # Budget arithmetic
    # ------------------------------------------------------------------
    def effective_budget_w(self) -> float:
        """Supply plus the oversubscription the prediction has earned.

        Never below the true supply (headroom only ever *adds*), never
        above rack nameplate (physics caps what admission could use).
        """
        self._require_bound()
        headroom_w = max(
            0.0, self.budget.supply_w - self.predictor.prediction_w
        )
        inflated_w = (
            self.budget.supply_w + self.oversubscription_gain * headroom_w
        )
        return min(self.rack.nameplate_w, inflated_w)

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Observe → predict → re-budget admission → tier ladder."""
        self._require_bound()
        counters = self.engine.obs.counters
        measured_w = self.current_power()
        predicted_w = self.predictor.observe(measured_w, self.slot_s)
        supply_w = self.budget.supply_w
        self.filter.set_refill_rate_w(
            self.effective_budget_w() - self.rack.idle_floor(),
            self.engine.now,
        )
        ratio = predicted_w / supply_w
        if measured_w > supply_w and ratio < 1.0:
            # The blind spot: the rack is really over budget but the
            # forecast has not caught up — the window the poisoning
            # attack manufactures.
            counters.inc("predict.blind_violation_slots")
        ladder = self.rack.ladder
        if ratio < self.warn_fraction:
            self.last_tier = TIER_HEALTHY
            counters.inc("predict.healthy_slots")
            current = min(s.level for s in self.rack.servers)
            if current < ladder.max_level:
                self.rack.set_all_levels(current + 1)
        elif ratio < 1.0:
            self.last_tier = TIER_WARN
            counters.inc("predict.warn_slots")
        elif ratio < self.hard_fraction:
            self.last_tier = TIER_SOFT
            counters.inc("predict.soft_cap_slots")
            current = min(s.level for s in self.rack.servers)
            self.rack.set_all_levels(max(0, current - 1))
        else:
            self.last_tier = TIER_HARD
            counters.inc("predict.hard_cap_slots")
            self.apply_uniform_cap(supply_w)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """JSON-ready audit record of the predictor's current verdict."""
        self._require_bound()
        return {
            "scheme": self.name,
            "quantile": self.quantile,
            "horizon_s": self.horizon_s,
            "observations": self.predictor.observations,
            "prediction_w": self.predictor.prediction_w,
            "quantile_estimate_w": self.predictor.quantile_estimate_w,
            "floor_w": self.predictor.floor_w,
            "supply_w": self.budget.supply_w,
            "effective_budget_w": self.effective_budget_w(),
            "tier": self.last_tier,
            "admitted": self.filter.admitted,
            "dropped": self.filter.dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.bound:
            return "PredictionScheme(unbound)"
        return (
            f"PredictionScheme(prediction={self.predictor.prediction_w:.0f}W"
            f"/{self.budget.supply_w:.0f}W, tier={self.last_tier})"
        )
