"""Power sensing with injectable measurement faults.

Every scheme's control decisions rest on "what is the rack drawing
right now?".  In the fault-free stack that question is answered by
:meth:`~repro.cluster.rack.Rack.total_power` directly; this module
inserts a sensor abstraction between the rack and the schemes so that
the chaos layer can make the answer *wrong* in the ways real branch
meters are wrong:

* **dropout** — the meter returns nothing for a window (``ok=False``);
* **stale reads** — the meter keeps repeating the value captured at the
  start of the window, honest timestamp included;
* **noise/bias** — Gaussian jitter and a constant offset on every read,
  drawn from a dedicated seeded stream (never the wall clock).

Consumers never read the sensor raw: they go through
:meth:`~repro.power.manager.PowerManagementScheme.current_power`, whose
bounded-staleness guard turns a missing/old reading into last-known-good
(inside the bound) or a worst-case nameplate assumption (beyond it).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from .._validation import check_non_negative, check_positive

__all__ = [
    "SensorReading",
    "TruePowerSensor",
    "FaultyPowerSensor",
]


class SensorReading(NamedTuple):
    """One meter observation.

    ``time_s`` is the *measurement* timestamp — under a stale-read
    fault it lags the read time, which is exactly what the staleness
    guard keys on.  ``ok=False`` marks a dropout (no observation; the
    carried value is meaningless).
    """

    power_w: float
    time_s: float
    ok: bool


class TruePowerSensor:
    """Fault-free sensor: the rack's exact instantaneous power."""

    def __init__(self, rack) -> None:
        self._rack = rack

    def read(self, now: float) -> SensorReading:
        """Exact rack power, timestamped *now*."""
        return SensorReading(self._rack.total_power(), now, True)


class FaultyPowerSensor:
    """A rack power sensor with injectable dropout/stale/noise faults.

    Parameters
    ----------
    rack:
        The metered rack (ground truth).
    rng:
        Dedicated seeded generator for measurement noise.  Draws happen
        only while a noise fault is active, so an un-faulted sensor is
        byte-identical to the true sensor.
    """

    def __init__(self, rack, rng: Optional[np.random.Generator] = None) -> None:
        self._rack = rack
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._dropout_until_s = float("-inf")
        self._stale_until_s = float("-inf")
        self._stale_reading: Optional[SensorReading] = None
        self._sigma_w = 0.0
        self._bias_w = 0.0
        self.reads = 0
        self.faulted_reads = 0

    # ------------------------------------------------------------------
    # Fault commands (driven by the injector)
    # ------------------------------------------------------------------
    def start_dropout(self, now: float, duration_s: float) -> None:
        """Return no readings for the next *duration_s* seconds."""
        check_positive("duration_s", duration_s)
        self._dropout_until_s = now + duration_s

    def start_stale(self, now: float, duration_s: float) -> None:
        """Freeze the current reading for the next *duration_s* seconds."""
        check_positive("duration_s", duration_s)
        self._stale_until_s = now + duration_s
        self._stale_reading = SensorReading(self._observe(), now, True)

    def set_noise(self, sigma_w: float, bias_w: float = 0.0) -> None:
        """Apply Gaussian noise (std *sigma_w*) plus *bias_w* to reads."""
        check_non_negative("sigma_w", sigma_w)
        self._sigma_w = float(sigma_w)
        self._bias_w = float(bias_w)

    # ------------------------------------------------------------------
    # Sensor interface
    # ------------------------------------------------------------------
    def read(self, now: float) -> SensorReading:
        """One observation at *now*, through whatever faults are active."""
        self.reads += 1
        if now < self._dropout_until_s:
            self.faulted_reads += 1
            return SensorReading(0.0, now, False)
        if now < self._stale_until_s and self._stale_reading is not None:
            self.faulted_reads += 1
            return self._stale_reading
        return SensorReading(self._observe(), now, True)

    def _observe(self) -> float:
        """True power, plus any configured noise/bias (clamped at 0)."""
        power_w = self._rack.total_power()
        if self._sigma_w > 0.0:
            power_w += float(self._rng.normal(0.0, self._sigma_w))
        power_w += self._bias_w
        return max(0.0, power_w)
