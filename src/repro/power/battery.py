"""UPS battery model.

The paper's evaluation uses "a mini battery which can sustain 2 minutes
when supporting all the web application nodes" (Section 6.4).  The
model is an energy store with power-rate limits and one-way conversion
efficiency; it is *passive* — power managers decide when and how hard
to (dis)charge each control slot, which is exactly how the Shaving and
Anti-DOPE schemes differ in Fig. 18.
"""

from __future__ import annotations

from typing import List, Tuple

from .._validation import check_fraction, check_non_negative, check_positive

__all__ = ["Battery"]


class Battery:
    """Rack UPS energy store.

    Parameters
    ----------
    capacity_j:
        Usable energy when fully charged (joules).
    max_discharge_w:
        Peak power the battery can deliver.
    max_charge_w:
        Peak power it can absorb while recharging.
    efficiency:
        One-way conversion efficiency; energy drawn from the grid to
        store ``E`` joules is ``E / efficiency``.
    initial_soc:
        Initial state of charge as a fraction of capacity.
    """

    def __init__(
        self,
        capacity_j: float,
        max_discharge_w: float,
        max_charge_w: float,
        efficiency: float = 0.9,
        initial_soc: float = 1.0,
    ) -> None:
        check_positive("capacity_j", capacity_j)
        check_positive("max_discharge_w", max_discharge_w)
        check_positive("max_charge_w", max_charge_w)
        check_fraction("efficiency", efficiency, inclusive=False)
        check_fraction("initial_soc", initial_soc)
        self.capacity_j = float(capacity_j)
        self.max_discharge_w = float(max_discharge_w)
        self.max_charge_w = float(max_charge_w)
        self.efficiency = float(efficiency)
        self.soc_j = self.capacity_j * float(initial_soc)
        # Cumulative flows for the Fig. 19 energy split.
        self.delivered_j = 0.0
        self.absorbed_grid_j = 0.0
        self.discharge_cycles = 0
        self._was_discharging = False
        # Degradation state (chaos layer): a stuck BMS ignores commands.
        self.stuck = False

    @classmethod
    def for_rack(
        cls,
        rack_nameplate_w: float,
        sustain_s: float = 120.0,
        discharge_c_rate: float = 1.0,
        charge_c_rate: float = 0.25,
        efficiency: float = 0.9,
    ) -> "Battery":
        """Size a battery as the paper does: *sustain_s* at full rack load.

        ``discharge_c_rate`` / ``charge_c_rate`` scale the power limits
        relative to the rack nameplate (a UPS that can carry the whole
        rack discharges at 1.0 C here).
        """
        check_positive("rack_nameplate_w", rack_nameplate_w)
        check_positive("sustain_s", sustain_s)
        check_positive("discharge_c_rate", discharge_c_rate)
        check_positive("charge_c_rate", charge_c_rate)
        return cls(
            capacity_j=rack_nameplate_w * sustain_s,
            max_discharge_w=rack_nameplate_w * discharge_c_rate,
            max_charge_w=rack_nameplate_w * charge_c_rate,
            efficiency=efficiency,
        )

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def soc_fraction(self) -> float:
        """State of charge in ``[0, 1]``."""
        return self.soc_j / self.capacity_j

    @property
    def empty(self) -> bool:
        """True when no usable energy remains."""
        return self.soc_j <= 1e-9

    @property
    def full(self) -> bool:
        """True when at capacity."""
        return self.soc_j >= self.capacity_j - 1e-9

    def available_power(self, dt: float) -> float:
        """Largest constant power sustainable for the next *dt* seconds."""
        check_positive("dt", dt)
        return min(self.max_discharge_w, self.soc_j / dt)

    # ------------------------------------------------------------------
    # Degradation (driven by the fault injector)
    # ------------------------------------------------------------------
    def set_stuck(self, stuck: bool) -> None:
        """Freeze (or release) the battery at its current state of charge.

        A stuck battery-management system accepts neither charge nor
        discharge commands — :meth:`discharge` and :meth:`charge` return
        0.0 — so schemes relying on shaving see the store silently
        refuse to help.
        """
        self.stuck = bool(stuck)

    def apply_capacity_fade(self, fraction: float) -> None:
        """Scale usable capacity by *fraction* (0 < fraction ≤ 1).

        Models ageing/thermal derating: the cell holds less than it was
        sized for.  Stored energy above the new ceiling is clamped away.
        """
        check_positive("fraction", fraction)
        check_fraction("fraction", fraction)
        self.capacity_j *= float(fraction)
        if self.soc_j > self.capacity_j:
            self.soc_j = self.capacity_j

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------
    def discharge(self, power_w: float, dt: float) -> float:
        """Request *power_w* for *dt* seconds; return the power delivered.

        Delivery saturates at the rate limit and at the remaining
        energy; the return value is what the rack actually receives.
        """
        check_non_negative("power_w", power_w)
        check_positive("dt", dt)
        if self.stuck or power_w <= 0 or self.empty:
            self._was_discharging = False
            return 0.0
        delivered_w = min(power_w, self.max_discharge_w, self.soc_j / dt)
        self.soc_j -= delivered_w * dt
        if self.soc_j < 0.0:
            # Energy-limited delivery subtracts (soc/dt)*dt, which can
            # overshoot the stored energy by one rounding ulp.
            self.soc_j = 0.0
        self.delivered_j += delivered_w * dt
        if not self._was_discharging:
            self.discharge_cycles += 1
            self._was_discharging = True
        return delivered_w

    def charge(self, power_w: float, dt: float) -> float:
        """Offer *power_w* of grid headroom for *dt*; return power accepted.

        The grid-side draw is the accepted power; stored energy is
        reduced by the conversion efficiency.
        """
        check_non_negative("power_w", power_w)
        check_positive("dt", dt)
        self._was_discharging = False
        if self.stuck or power_w <= 0 or self.full:
            return 0.0
        room_w = (self.capacity_j - self.soc_j) / (dt * self.efficiency)
        accepted_w = min(power_w, self.max_charge_w, room_w)
        self.soc_j += accepted_w * dt * self.efficiency
        if self.soc_j > self.capacity_j:
            # Room-limited absorption can overshoot capacity by an ulp.
            self.soc_j = self.capacity_j
        self.absorbed_grid_j += accepted_w * dt
        return accepted_w

    def idle(self) -> None:
        """Mark a slot with neither charge nor discharge (cycle tracking)."""
        self._was_discharging = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Battery(soc={self.soc_fraction * 100:.0f}%, "
            f"cap={self.capacity_j / 3600:.2f}Wh)"
        )
