"""Trace substrate: arrival processes and the Alibaba cluster trace."""

from .alibaba import (
    MACHINE_USAGE_COLUMNS,
    ClusterTrace,
    SyntheticAlibabaTrace,
    TraceSummary,
    load_machine_usage,
    write_machine_usage,
)
from .arrival import (
    ArrivalProcess,
    ConstantRateProcess,
    MMPPProcess,
    ModulatedPoissonProcess,
    PoissonProcess,
)

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "ConstantRateProcess",
    "ModulatedPoissonProcess",
    "MMPPProcess",
    "ClusterTrace",
    "SyntheticAlibabaTrace",
    "TraceSummary",
    "MACHINE_USAGE_COLUMNS",
    "load_machine_usage",
    "write_machine_usage",
]
