"""Arrival-process models.

Traffic enters the simulator through arrival processes that generate
inter-arrival gaps one event at a time (the event-driven contract) while
staying cheap enough for thousand-requests-per-second floods.  Three
families cover everything in the paper:

* :class:`PoissonProcess` — memoryless legitimate traffic at a fixed
  rate;
* :class:`ConstantRateProcess` — attack tools like ApacheBench that
  pace requests deterministically;
* :class:`ModulatedPoissonProcess` — Poisson arrivals whose rate tracks
  an arbitrary envelope ``λ(t)`` (the Alibaba trace), implemented with
  Lewis–Shedler thinning so the envelope can be any bounded function;
* :class:`MMPPProcess` — a 2-state Markov-modulated Poisson process for
  bursty sources.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from .._validation import check_non_negative, check_positive

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "ConstantRateProcess",
    "ModulatedPoissonProcess",
    "MMPPProcess",
]


class ArrivalProcess:
    """Interface: produce the gap to the next arrival after time *t*."""

    def next_interarrival(self, rng: np.random.Generator, t: float) -> float:
        """Seconds from *t* until the next arrival (``inf`` = no more)."""
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Long-run average arrival rate in requests/second."""
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at *rate* requests/second."""

    def __init__(self, rate: float) -> None:
        check_non_negative("rate", rate)
        self.rate = float(rate)

    def next_interarrival(self, rng: np.random.Generator, t: float) -> float:
        """Exponential gap at the configured rate (``inf`` for rate 0)."""
        if self.rate <= 0:
            return math.inf
        return float(rng.exponential(1.0 / self.rate))

    def mean_rate(self) -> float:
        """The configured rate."""
        return self.rate


class ConstantRateProcess(ArrivalProcess):
    """Deterministic pacing at *rate* requests/second with optional jitter.

    Models load generators (http-load, ApacheBench) that hold a fixed
    concurrency/rate.  ``jitter`` is the relative half-width of a
    uniform perturbation; zero gives exactly periodic arrivals.
    """

    def __init__(self, rate: float, jitter: float = 0.0) -> None:
        check_non_negative("rate", rate)
        check_non_negative("jitter", jitter)
        if jitter >= 1.0:
            raise ValueError(f"jitter must be < 1, got {jitter}")
        self.rate = float(rate)
        self.jitter = float(jitter)

    def next_interarrival(self, rng: np.random.Generator, t: float) -> float:
        """Fixed gap (optionally jittered) at the configured rate."""
        if self.rate <= 0:
            return math.inf
        gap = 1.0 / self.rate
        if self.jitter > 0:
            gap *= 1.0 + float(rng.uniform(-self.jitter, self.jitter))
        return gap

    def mean_rate(self) -> float:
        """The configured rate (jitter is zero-mean)."""
        return self.rate


class ModulatedPoissonProcess(ArrivalProcess):
    """Non-homogeneous Poisson arrivals with envelope ``λ(t)``.

    Uses Lewis–Shedler thinning: candidate gaps are drawn at the
    envelope's upper bound ``rate_max`` and accepted with probability
    ``λ(t)/rate_max``, which is exact for any measurable rate function
    bounded by ``rate_max``.
    """

    def __init__(
        self,
        rate_fn: Callable[[float], float],
        rate_max: float,
        horizon: Optional[float] = None,
    ) -> None:
        check_positive("rate_max", rate_max)
        if horizon is not None:
            check_positive("horizon", horizon)
        self.rate_fn = rate_fn
        self.rate_max = float(rate_max)
        self.horizon = horizon

    def next_interarrival(self, rng: np.random.Generator, t: float) -> float:
        """Thinning draw: exact for any envelope bounded by rate_max."""
        clock = t
        while True:
            gap = float(rng.exponential(1.0 / self.rate_max))
            clock += gap
            if self.horizon is not None and clock > self.horizon:
                return math.inf
            rate = float(self.rate_fn(clock))
            if rate < 0:
                raise ValueError(f"rate_fn returned negative rate {rate} at t={clock}")
            if rate > self.rate_max * (1 + 1e-9):
                raise ValueError(
                    f"rate_fn({clock})={rate} exceeds rate_max={self.rate_max}"
                )
            if rng.random() * self.rate_max <= rate:
                return clock - t

    def mean_rate(self) -> float:
        """Numerical average of the envelope over the horizon (or 1 h)."""
        # Numerical average of the envelope over the horizon (or 1 h).
        end = self.horizon if self.horizon is not None else 3600.0
        ts = np.linspace(0.0, end, 1000)
        return float(np.mean([self.rate_fn(float(x)) for x in ts]))


class MMPPProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The process alternates between a *calm* state (rate ``rate_low``)
    and a *burst* state (rate ``rate_high``); sojourn times in each
    state are exponential.  Used to model flash-crowd-like legitimate
    bursts the paper's oversubscription assumption tolerates.
    """

    def __init__(
        self,
        rate_low: float,
        rate_high: float,
        mean_low_duration_s: float,
        mean_high_duration_s: float,
    ) -> None:
        check_non_negative("rate_low", rate_low)
        check_positive("rate_high", rate_high)
        check_positive("mean_low_duration_s", mean_low_duration_s)
        check_positive("mean_high_duration_s", mean_high_duration_s)
        if rate_high < rate_low:
            raise ValueError("rate_high must be >= rate_low")
        self.rate_low = float(rate_low)
        self.rate_high = float(rate_high)
        self.mean_low = float(mean_low_duration_s)
        self.mean_high = float(mean_high_duration_s)
        self._in_burst = False
        self._state_until = 0.0

    def next_interarrival(self, rng: np.random.Generator, t: float) -> float:
        """Gap under the current Markov state, advancing sojourns lazily."""
        clock = t
        total = 0.0
        while True:
            if clock >= self._state_until:
                # Draw the next sojourn.
                self._in_burst = not self._in_burst if self._state_until > 0 else False
                mean = self.mean_high if self._in_burst else self.mean_low
                self._state_until = clock + float(rng.exponential(mean))
            rate = self.rate_high if self._in_burst else self.rate_low
            window = self._state_until - clock
            if rate <= 0:
                clock = self._state_until
                total += window
                continue
            gap = float(rng.exponential(1.0 / rate))
            if gap <= window:
                return total + gap
            clock = self._state_until
            total += window

    def mean_rate(self) -> float:
        """Stationary mean rate of the two-state chain."""
        p_burst = self.mean_high / (self.mean_low + self.mean_high)
        return self.rate_low * (1 - p_burst) + self.rate_high * p_burst
