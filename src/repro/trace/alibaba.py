"""Alibaba cluster-trace substrate.

The paper drives its normal-user population from the 2018 Alibaba
container trace ("12 hours long running log of 1.3k machines").  The
real trace is not redistributable here, so this module provides:

* :class:`SyntheticAlibabaTrace` — a generator producing per-machine
  CPU-utilisation series with the trace's published statistical
  character: ~40 % mean utilisation, a diurnal envelope, AR(1)
  short-range correlation and occasional heavy-tailed bursts; and
* :func:`load_machine_usage` — a parser for the real
  ``machine_usage.csv`` schema, so the genuine trace is a drop-in
  replacement when available.

Either source reduces to a :class:`ClusterTrace`, whose normalised
aggregate-load curve modulates the legitimate arrival rate
(:meth:`ClusterTrace.to_rate_function`).
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .._validation import check_fraction, check_int, check_positive, require

__all__ = [
    "TraceSummary",
    "ClusterTrace",
    "SyntheticAlibabaTrace",
    "load_machine_usage",
    "write_machine_usage",
]

#: Columns of the v2018 ``machine_usage.csv`` file, in on-disk order.
MACHINE_USAGE_COLUMNS = (
    "machine_id",
    "time_stamp",
    "cpu_util_percent",
    "mem_util_percent",
    "mem_gps",
    "mkpi",
    "net_in",
    "net_out",
    "disk_io_percent",
)


@dataclass(frozen=True)
class TraceSummary:
    """Descriptive statistics of a cluster trace."""

    num_machines: int
    duration_s: float
    interval_s: float
    mean_util: float
    p95_util: float
    max_util: float

    def __str__(self) -> str:
        return (
            f"{self.num_machines} machines x {self.duration_s / 3600:.1f} h "
            f"@ {self.interval_s:.0f}s; util mean={self.mean_util:.2f} "
            f"p95={self.p95_util:.2f} max={self.max_util:.2f}"
        )


class ClusterTrace:
    """A (machines × intervals) utilisation matrix with helpers.

    Parameters
    ----------
    utilization:
        Array of shape ``(num_machines, num_intervals)`` with values in
        ``[0, 1]``.
    interval_s:
        Sampling period of each column.
    """

    def __init__(self, utilization: np.ndarray, interval_s: float) -> None:
        util = np.asarray(utilization, dtype=float)
        require(util.ndim == 2, f"utilization must be 2-D, got shape {util.shape}")
        require(util.size > 0, "utilization must be non-empty")
        check_positive("interval_s", interval_s)
        if np.any(util < 0) or np.any(util > 1):
            raise ValueError("utilization values must lie in [0, 1]")
        self.utilization = util
        self.interval_s = float(interval_s)

    @property
    def num_machines(self) -> int:
        """Number of machine rows."""
        return self.utilization.shape[0]

    @property
    def num_intervals(self) -> int:
        """Number of sampling intervals."""
        return self.utilization.shape[1]

    @property
    def duration_s(self) -> float:
        """Trace duration in seconds."""
        return self.num_intervals * self.interval_s

    def aggregate_load(self) -> np.ndarray:
        """Cluster-mean utilisation per interval (1-D array)."""
        return self.utilization.mean(axis=0)

    def normalized_load(self) -> np.ndarray:
        """Aggregate load rescaled so its maximum is 1."""
        agg = self.aggregate_load()
        peak = float(agg.max())
        if peak <= 0:
            return np.zeros_like(agg)
        return agg / peak

    def summary(self) -> TraceSummary:
        """Descriptive statistics (vectorised over the whole matrix)."""
        flat = self.utilization.ravel()
        return TraceSummary(
            num_machines=self.num_machines,
            duration_s=self.duration_s,
            interval_s=self.interval_s,
            mean_util=float(flat.mean()),
            p95_util=float(np.percentile(flat, 95)),
            max_util=float(flat.max()),
        )

    def to_rate_function(
        self,
        base_rate: float,
        peak_rate: float,
        loop: bool = True,
    ) -> Callable[[float], float]:
        """Map the load curve onto an arrival-rate envelope λ(t).

        Load 0 maps to *base_rate*, the trace's peak maps to
        *peak_rate*; intermediate values interpolate linearly.  With
        ``loop=True`` the curve repeats past the trace horizon, so a
        simulation longer than the trace keeps a sensible envelope.
        """
        check_positive("base_rate", base_rate)
        check_positive("peak_rate", peak_rate)
        require(peak_rate >= base_rate, "peak_rate must be >= base_rate")
        load = self.normalized_load()
        n = len(load)
        duration_s = self.duration_s
        span = peak_rate - base_rate

        def rate(t: float) -> float:
            """The arrival-rate envelope λ(t)."""
            if t < 0:
                raise ValueError(f"t must be >= 0, got {t}")
            if loop:
                t = t % duration_s
            elif t >= duration_s:
                return base_rate
            idx = min(int(t / self.interval_s), n - 1)
            return base_rate + span * float(load[idx])

        return rate

    def slice_time(self, start_s: float, end_s: float) -> "ClusterTrace":
        """Sub-trace covering ``[start_s, end_s)``."""
        require(0 <= start_s < end_s, "need 0 <= start_s < end_s")
        i0 = int(start_s / self.interval_s)
        i1 = int(math.ceil(end_s / self.interval_s))
        i1 = min(i1, self.num_intervals)
        require(i0 < i1, "empty time slice")
        return ClusterTrace(self.utilization[:, i0:i1], self.interval_s)


class SyntheticAlibabaTrace:
    """Generator of Alibaba-2018-like container utilisation traces.

    The model is a diurnal envelope (the 12 h trace covers roughly one
    trough-to-peak half-cycle) plus a per-machine AR(1) residual and
    rare Pareto-tailed bursts:

    ``u_m(k) = clip(base + diurnal(k) + ar1_m(k) + burst_m(k), 0, 1)``

    Parameters are the published trace characteristics; override them to
    stress different regimes.
    """

    def __init__(
        self,
        mean_util: float = 0.40,
        diurnal_amplitude: float = 0.15,
        ar1_coeff: float = 0.9,
        ar1_sigma: float = 0.05,
        burst_prob: float = 0.002,
        burst_scale: float = 0.25,
        day_period_s: float = 86400.0,
    ) -> None:
        check_fraction("mean_util", mean_util, inclusive=False)
        check_fraction("diurnal_amplitude", diurnal_amplitude)
        check_fraction("ar1_coeff", ar1_coeff)
        check_positive("ar1_sigma", ar1_sigma)
        check_fraction("burst_prob", burst_prob)
        check_fraction("burst_scale", burst_scale)
        check_positive("day_period_s", day_period_s)
        self.mean_util = mean_util
        self.diurnal_amplitude = diurnal_amplitude
        self.ar1_coeff = ar1_coeff
        self.ar1_sigma = ar1_sigma
        self.burst_prob = burst_prob
        self.burst_scale = burst_scale
        self.day_period_s = day_period_s

    def generate(
        self,
        num_machines: int = 64,
        duration_s: float = 12 * 3600.0,
        interval_s: float = 30.0,
        seed: int = 0,
    ) -> ClusterTrace:
        """Produce a :class:`ClusterTrace` (fully vectorised).

        The defaults scale the paper's 1.3 k machines down to 64 — the
        aggregate load curve, which is all the simulation consumes, is
        statistically indistinguishable at that size because machine
        residuals average out.
        """
        check_int("num_machines", num_machines, minimum=1)
        check_positive("duration_s", duration_s)
        check_positive("interval_s", interval_s)
        rng = np.random.default_rng(seed)
        n = int(round(duration_s / interval_s))
        require(n >= 1, "duration must cover at least one interval")

        t = np.arange(n) * interval_s
        # Start the 12 h window on the rising edge of the diurnal cycle.
        phase = 2 * np.pi * (t / self.day_period_s) - np.pi / 2
        diurnal = self.diurnal_amplitude * np.sin(phase)

        # AR(1) residual per machine, vectorised across machines via a
        # scan over time (n is small: 1440 for 12 h @ 30 s).
        noise = rng.normal(0.0, self.ar1_sigma, size=(num_machines, n))
        resid = np.empty_like(noise)
        resid[:, 0] = noise[:, 0]
        a = self.ar1_coeff
        for k in range(1, n):
            resid[:, k] = a * resid[:, k - 1] + noise[:, k]
        # Stationary variance correction so residual spread is sigma.
        resid *= math.sqrt(max(1e-12, 1.0 - a * a))

        bursts = np.zeros((num_machines, n))
        mask = rng.random((num_machines, n)) < self.burst_prob
        if mask.any():
            bursts[mask] = self.burst_scale * (
                1.0 + rng.pareto(2.5, size=int(mask.sum()))
            )
            bursts = np.minimum(bursts, 3 * self.burst_scale)

        util = np.clip(self.mean_util + diurnal[None, :] + resid + bursts, 0.0, 1.0)
        return ClusterTrace(util, interval_s)


def load_machine_usage(
    path: str,
    interval_s: float = 10.0,
    max_machines: Optional[int] = None,
) -> ClusterTrace:
    """Parse a real Alibaba-v2018 ``machine_usage.csv`` into a trace.

    The file has no header; columns follow :data:`MACHINE_USAGE_COLUMNS`.
    Rows are binned onto a uniform ``interval_s`` grid per machine;
    missing bins carry the previous value forward.
    """
    check_positive("interval_s", interval_s)
    per_machine: dict = {}
    t_min, t_max = math.inf, -math.inf
    with open(path, newline="") as fh:
        for row in csv.reader(fh):
            if not row or len(row) < 3:
                continue
            machine, ts, cpu = row[0], row[1], row[2]
            if cpu == "":
                continue
            t = float(ts)
            u = float(cpu) / 100.0
            per_machine.setdefault(machine, []).append((t, min(max(u, 0.0), 1.0)))
            t_min = min(t_min, t)
            t_max = max(t_max, t)
    require(bool(per_machine), f"no usable rows in {path}")
    machines: List[str] = sorted(per_machine)
    if max_machines is not None:
        check_int("max_machines", max_machines, minimum=1)
        machines = machines[:max_machines]
    # Samples at t_min and t_max are both inside the grid, hence +1.
    n = max(1, int(math.floor((t_max - t_min) / interval_s)) + 1)
    util = np.zeros((len(machines), n))
    for i, machine in enumerate(machines):
        rows = sorted(per_machine[machine])
        last = 0.0
        j = 0
        for k in range(n):
            bin_end = t_min + (k + 1) * interval_s
            while j < len(rows) and rows[j][0] < bin_end:
                last = rows[j][1]
                j += 1
            util[i, k] = last
    return ClusterTrace(util, interval_s)


def write_machine_usage(
    trace: ClusterTrace, path: str, machine_prefix: str = "m_"
) -> None:
    """Serialise a trace in the real ``machine_usage.csv`` schema.

    Round-trips through :func:`load_machine_usage`; useful for fixtures
    and for exporting synthetic traces to external tools.
    """
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        for i in range(trace.num_machines):
            for k in range(trace.num_intervals):
                writer.writerow(
                    [
                        # Zero-padded so lexicographic machine order in the
                        # loader matches numeric order.
                        f"{machine_prefix}{i:06d}",
                        f"{k * trace.interval_s:.0f}",
                        f"{trace.utilization[i, k] * 100:.2f}",
                        "",
                        "",
                        "",
                        "",
                        "",
                        "",
                    ]
                )
