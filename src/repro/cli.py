"""Command-line interface: ``python -m repro <command>``.

Three operator-facing commands wrap the library's main workflows:

``region``
    Map the DOPE attack region of a configuration (paper Fig. 11).
``compare``
    Run the Table-2 scheme comparison under a DOPE flood at one
    provisioning level (paper Figs. 16/17 for one column).
``attack``
    Launch the adaptive DOPE attacker against a victim configuration
    and print its convergence trace (paper Fig. 12).
``sweep``
    The Fig. 11 region grid through the experiment runner: probe cells
    fan out over ``--workers`` processes and an optional ``--cache-dir``
    makes repeat sweeps near-instant.
``bench``
    The machine-readable benchmark (``repro-bench/1`` JSON): runs the
    evaluation scenario plus a cold/warm region sweep and reports the
    counter table, wall timings and the event-throughput headline CI
    regression-checks.
``chaos``
    The fault-injection sweep (``repro-chaos/1`` JSON): the Table-2
    scheme matrix re-run under a DOPE flood combined with server
    crashes, meter faults and battery degradation, with drops
    attributed to policy vs fault causes.
``lint``
    The domain-aware static analysis suite (REP001–REP012): unit
    dataflow, determinism races, layering and the obs/faults contract
    registries, with text/JSON/SARIF output and a baseline workflow.

All commands are deterministic per ``--seed``; ``sweep`` and ``chaos``
output is additionally byte-identical for any worker count, and
``bench``'s counter table (not its wall timings) is deterministic per
seed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis import DopeRegionAnalyzer, format_table
from .bench import BENCH_ENGINES, SEED as BENCH_SEED
from .cluster import FLAT_TOPOLOGY, topology_names
from .detect import PLACEMENTS, SCHEME_NAMES, make_scheme
from .devtools import lint as devtools_lint
from .bench import run_bench
from .faults import run_chaos
from .power import BudgetLevel
from .runner import ResultCache
from .sim import DataCenterSimulation, SimulationConfig
from .workloads import (
    ALL_TYPES,
    COLLA_FILT,
    K_MEANS,
    WORD_COUNT,
    TrafficClass,
    get_type,
    uniform_mix,
)

__all__ = [
    "build_parser",
    "cmd_region",
    "cmd_compare",
    "cmd_attack",
    "cmd_sweep",
    "cmd_bench",
    "cmd_chaos",
    "cmd_lint",
    "main",
]

def _budget(name: str) -> BudgetLevel:
    return BudgetLevel[name.upper()]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--budget",
        choices=[level.name.lower() for level in BudgetLevel],
        default="low",
        help="provisioning level (default: low)",
    )
    parser.add_argument(
        "--servers", type=int, default=4, help="rack size (default: 4)"
    )
    parser.add_argument(
        "--topology",
        choices=list(topology_names()),
        default=FLAT_TOPOLOGY,
        help=(
            "power/fabric topology: 'flat' (default, byte-identical to "
            "the pre-topology simulator) or a tree preset; tree presets "
            "fix the fleet size, so --servers applies to 'flat' only"
        ),
    )
    parser.add_argument(
        "--detect-placement",
        choices=list(PLACEMENTS),
        default="dc",
        help=(
            "quarantine-pool placement for the online-detect scheme: "
            "'dc' (default) carves one pool per data center, 'row' "
            "isolates one server per power-tree row"
        ),
    )
    parser.add_argument(
        "--prediction-horizon",
        type=float,
        default=60.0,
        help=(
            "history horizon in seconds for the prediction scheme's "
            "P99 power estimate (default: 60)"
        ),
    )


def _add_scheme_selector(parser: argparse.ArgumentParser) -> None:
    """The region/sweep scheme selector: one sweep per selected scheme.

    ``--scheme X`` is shorthand for ``--schemes X``; with neither, the
    sweep runs unmanaged (the classic Fig. 11 raw-vulnerability map).
    """
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--scheme",
        choices=list(SCHEME_NAMES),
        default=None,
        help="run the sweep under one defense scheme (default: unmanaged)",
    )
    group.add_argument(
        "--schemes",
        nargs="+",
        choices=list(SCHEME_NAMES),
        default=None,
        metavar="SCHEME",
        help="sweep once per scheme and compare DOPE-region sizes",
    )


def _selected_schemes(args: argparse.Namespace) -> List[Optional[str]]:
    """Scheme list a region/sweep command should iterate over.

    ``[None]`` means one unmanaged sweep (the historical behaviour).
    """
    if getattr(args, "scheme", None):
        return [args.scheme]
    if getattr(args, "schemes", None):
        return list(args.schemes)
    return [None]


def _config(args: argparse.Namespace, **overrides: object) -> SimulationConfig:
    """Build the configuration the common flags describe.

    Tree presets carry their own fleet size, so ``--servers`` feeds
    ``num_servers`` only for the flat topology.
    """
    kwargs: dict = dict(
        budget_level=_budget(args.budget),
        seed=args.seed,
        detect_placement=getattr(args, "detect_placement", "dc"),
        prediction_horizon_s=getattr(args, "prediction_horizon", 60.0),
    )
    kwargs.update(overrides)
    if args.topology == FLAT_TOPOLOGY:
        kwargs.setdefault("num_servers", args.servers)
    return SimulationConfig.for_topology(args.topology, **kwargs)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DOPE / Anti-DOPE simulation toolkit (ICPP 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    region = sub.add_parser("region", help="map the DOPE attack region (Fig 11)")
    _add_common(region)
    region.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[50.0, 150.0, 300.0, 600.0],
        help="attack rates to sweep",
    )
    region.add_argument("--agents", type=int, default=20)
    _add_scheme_selector(region)

    compare = sub.add_parser(
        "compare", help="compare Table-2 schemes under a DOPE flood"
    )
    _add_common(compare)
    compare.add_argument("--attack-rate", type=float, default=220.0)
    compare.add_argument("--duration", type=float, default=240.0)
    compare.add_argument(
        "--schemes",
        nargs="+",
        choices=list(SCHEME_NAMES),
        default=list(SCHEME_NAMES),
    )

    attack = sub.add_parser(
        "attack", help="run the adaptive DOPE attacker (Fig 12)"
    )
    _add_common(attack)
    attack.add_argument("--agents", type=int, default=40)
    attack.add_argument("--max-rate", type=float, default=1200.0)
    attack.add_argument("--duration", type=float, default=400.0)
    attack.add_argument(
        "--scheme",
        choices=list(SCHEME_NAMES),
        default="capping",
        help="victim's defense scheme (default: capping)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="region grid through the parallel/cached experiment runner",
    )
    _add_common(sweep)
    sweep.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[50.0, 150.0, 300.0, 600.0],
        help="attack rates to sweep",
    )
    sweep.add_argument("--agents", type=int, default=20)
    sweep.add_argument(
        "--types",
        nargs="+",
        default=None,
        metavar="TYPE",
        help="endpoint types to probe (default: the full catalog)",
    )
    sweep.add_argument(
        "--window", type=float, default=50.0, help="simulated seconds per cell"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; output is identical either way)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache; repeat sweeps reuse stored cells",
    )
    _add_scheme_selector(sweep)

    bench = sub.add_parser(
        "bench", help="machine-readable benchmark (repro-bench/1 JSON)"
    )
    mode = bench.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized bench (seconds; the default)",
    )
    mode.add_argument(
        "--full",
        action="store_true",
        help="full evaluation-sized bench (minutes)",
    )
    bench.add_argument(
        "--seed", type=int, default=BENCH_SEED, help="master RNG seed"
    )
    bench.add_argument(
        "--name", default=None, help="payload name (default: bench-<mode>)"
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON payload here (default: stdout)",
    )
    bench.add_argument(
        "--engine",
        choices=list(BENCH_ENGINES),
        default=None,
        help=(
            "execution engine (default: $REPRO_BENCH_ENGINE or 'fluid')"
        ),
    )

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection scheme sweep (repro-chaos/1 JSON)",
    )
    _add_common(chaos)
    chaos_mode = chaos.add_mutually_exclusive_group()
    chaos_mode.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized chaos sweep (the default)",
    )
    chaos_mode.add_argument(
        "--full",
        action="store_true",
        help="evaluation-sized sweep with the severe fault profile",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; output is identical either way)",
    )
    chaos.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache; repeat sweeps reuse stored cells",
    )
    chaos.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON payload here (default: stdout)",
    )
    chaos.add_argument(
        "--schemes",
        nargs="+",
        choices=list(SCHEME_NAMES),
        default=None,
        metavar="SCHEME",
        help="restrict the chaos matrix to a scheme subset (default: all)",
    )

    lint = sub.add_parser(
        "lint",
        help="domain-aware static analysis (REP rules, SARIF, baselines)",
    )
    devtools_lint.configure_parser(lint)

    return parser


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_region(args: argparse.Namespace) -> int:
    """``repro region`` — sweep and print the DOPE region map."""
    summary = []
    for scheme in _selected_schemes(args):
        analyzer = DopeRegionAnalyzer(
            config=_config(args),
            num_agents=args.agents,
            scheme=scheme,
        )
        result = analyzer.sweep(ALL_TYPES, args.rates)
        label = scheme if scheme else "unmanaged"
        print(
            format_table(
                ["type"] + [f"{int(r)}rps" for r in args.rates],
                [
                    (t.name, *(result.zone_of(t.name, r) for r in args.rates))
                    for t in ALL_TYPES
                ],
                title=(
                    f"DOPE region ({args.budget}, {args.agents} agents, "
                    f"{label})"
                ),
            )
        )
        dope = result.dope_cells()
        print(
            f"\n{len(dope)} of {len(result.cells)} swept cells are in the "
            "DOPE region"
        )
        summary.append((label, len(dope), len(result.cells)))
    if len(summary) > 1:
        print()
        print(
            format_table(
                ["scheme", "dope cells", "swept"],
                summary,
                title="DOPE-region size by scheme",
            )
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare`` — run the scheme matrix at one budget."""
    rows = []
    for name in args.schemes:
        config = _config(args)
        sim = DataCenterSimulation(config, scheme=make_scheme(name, config))
        sim.add_normal_traffic(rate_rps=40)
        sim.add_flood(
            mix=uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT)),
            rate_rps=args.attack_rate,
            num_agents=20,
            start_s=30.0,
        )
        sim.run(args.duration)
        stats = sim.latency_stats(
            traffic_class=TrafficClass.NORMAL, start_s=60.0
        )
        avail = sim.availability_report(
            sla_s=0.5, traffic_class=TrafficClass.NORMAL, start_s=60.0
        )
        rows.append(
            (
                name,
                stats.mean * 1e3,
                stats.p90 * 1e3,
                avail.availability,
                sim.meter.peak_power(),
            )
        )
    print(
        format_table(
            ["scheme", "mean ms", "p90 ms", "availability", "peak W"],
            rows,
            title=(
                f"Scheme comparison @ {args.budget}, "
                f"{args.attack_rate:.0f} rps DOPE flood"
            ),
        )
    )
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    """``repro attack`` — run the adaptive attacker and print its trace."""
    config = _config(args)
    sim = DataCenterSimulation(config, scheme=make_scheme(args.scheme, config))
    sim.add_normal_traffic(rate_rps=30)
    meter, budget = sim.meter, sim.budget

    def effective() -> bool:
        """Attacker oracle: did recent power exceed the budget?"""
        recent = meter.powers()[-20:]
        return bool(len(recent) and recent.max() > budget.supply_w)

    attacker = sim.add_dope_attacker(
        initial_rate_rps=50.0,
        rate_step_rps=75.0,
        max_rate_rps=args.max_rate,
        num_agents=args.agents,
        adjust_interval_s=20.0,
        effect_signal=effective,
    )
    sim.run(args.duration)
    print(
        format_table(
            ["t", "rate rps", "per-agent", "detected", "effective", "state"],
            [
                (
                    a.time_s,
                    a.rate_rps,
                    a.rate_rps / a.num_agents,
                    a.detected,
                    a.effective,
                    a.state.value,
                )
                for a in attacker.stats.adjustments
            ],
            title="DOPE probe-and-adjust trace",
        )
    )
    print(f"\nconverged: {attacker.stats.converged}  "
          f"final rate: {attacker.stats.final_rate:.0f} rps  "
          f"bans: {sim.firewall.stats.bans}  "
          f"peak: {sim.meter.peak_power():.0f} W / {budget.supply_w:.0f} W budget")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep`` — the region grid via the experiment runner."""
    types = (
        ALL_TYPES
        if args.types is None
        else tuple(get_type(name) for name in args.types)
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    summary = []
    for scheme in _selected_schemes(args):
        analyzer = DopeRegionAnalyzer(
            config=_config(args),
            window_s=args.window,
            num_agents=args.agents,
            scheme=scheme,
        )
        result = analyzer.sweep(
            types, args.rates, workers=args.workers, cache=cache
        )
        label = scheme if scheme else "unmanaged"
        print(
            format_table(
                ["type"] + [f"{int(r)}rps" for r in args.rates],
                [
                    (t.name, *(result.zone_of(t.name, r) for r in args.rates))
                    for t in types
                ],
                title=(
                    f"DOPE region sweep ({args.budget}, {args.agents} agents, "
                    f"{len(result.cells)} cells, {label})"
                ),
            )
        )
        dope = result.dope_cells()
        print(
            f"\n{len(dope)} of {len(result.cells)} swept cells are in the "
            "DOPE region"
        )
        summary.append((label, len(dope), len(result.cells)))
    if len(summary) > 1:
        print()
        print(
            format_table(
                ["scheme", "dope cells", "swept"],
                summary,
                title="DOPE-region size by scheme",
            )
        )
    if cache is not None:
        print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench`` — emit the machine-readable benchmark payload."""
    mode = "full" if args.full else "smoke"
    name = args.name if args.name else f"bench-{mode}"
    payload = run_bench(mode=mode, seed=args.seed, name=name, engine=args.engine)
    text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    if args.out:
        Path(args.out).write_text(text + "\n")
        headline = payload["headline"]
        print(
            f"wrote {args.out}  "
            f"({headline['metric']}={headline['value']:.0f})"  # type: ignore[index]
        )
    else:
        print(text)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos`` — emit the fault-injection sweep payload."""
    mode = "full" if args.full else "smoke"
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    payload = run_chaos(
        mode=mode,
        seed=args.seed,
        budget=args.budget,
        num_servers=args.servers,
        workers=args.workers,
        cache=cache,
        topology=args.topology,
        schemes=args.schemes,
    )
    text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    if args.out:
        Path(args.out).write_text(text + "\n")
        cells = payload["cells"]
        print(f"wrote {args.out}  ({len(cells)} cells)")  # type: ignore[arg-type]
    else:
        print(text)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint`` — run the static analysis suite."""
    return devtools_lint.run(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "region": cmd_region,
        "compare": cmd_compare,
        "attack": cmd_attack,
        "sweep": cmd_sweep,
        "bench": cmd_bench,
        "chaos": cmd_chaos,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
