"""repro — DOPE / Anti-DOPE simulation framework.

A from-scratch Python reproduction of *"When Power Oversubscription
Meets Traffic Flood Attack: Re-Thinking Data Center Peak Load
Management"* (Hou et al., ICPP 2019).

The package simulates a power-oversubscribed data center under
application-layer traffic floods and implements:

* the **DOPE** threat — low-rate, high-power request floods that
  violate the power budget without tripping network DoS defences; and
* **Anti-DOPE** — the paper's request-aware power-management framework
  (power-driven forwarding + request-aware/differentiated power
  management), alongside the Capping / Shaving / Token baselines.

Quickstart::

    from repro import (
        AntiDopeScheme, BudgetLevel, DataCenterSimulation, SimulationConfig,
    )
    from repro.workloads import COLLA_FILT

    config = SimulationConfig(budget_level=BudgetLevel.LOW)
    sim = DataCenterSimulation(config, scheme=AntiDopeScheme())
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(mix=COLLA_FILT, rate_rps=400, num_agents=20, start_s=60)
    sim.run(300)
    print(sim.latency_stats())
"""

from ._version import __version__
from .core import AntiDopeScheme, DPMPlanner, PDFPolicy, SuspectList
from .detect import OnlineDetectScheme
from .metrics import LatencyStats, MetricsCollector
from .power import (
    Battery,
    BudgetLevel,
    CappingScheme,
    NullScheme,
    PowerBudget,
    PowerManagementScheme,
    PredictionScheme,
    ShavingScheme,
    TokenScheme,
)
from .sim import DataCenterSimulation, SimulationConfig

__all__ = [
    "__version__",
    "DataCenterSimulation",
    "SimulationConfig",
    "BudgetLevel",
    "PowerBudget",
    "Battery",
    "PowerManagementScheme",
    "NullScheme",
    "CappingScheme",
    "ShavingScheme",
    "TokenScheme",
    "PredictionScheme",
    "AntiDopeScheme",
    "OnlineDetectScheme",
    "SuspectList",
    "PDFPolicy",
    "DPMPlanner",
    "MetricsCollector",
    "LatencyStats",
]
