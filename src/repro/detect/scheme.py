"""OnlineDetect — the fifth Table-2 scheme (streaming Anti-DOPE).

Anti-DOPE's forwarding half classifies requests by an *offline* URL
suspect list; an adaptive attacker that shifts its mix, or a deployment
whose profile has drifted, slips straight past it.  OnlineDetect keeps
the same actuation machinery — a dedicated suspect server pool fed by
the NLB, throttled first by the differentiated power manager (RPM) —
but replaces the static classification with a live inference pipeline:

    arrivals + completions → :class:`StreamingFeatureExtractor`
        → :class:`OnlineAnomalyModel` (per control slot)
            → dynamic *source* suspect set
                → :class:`DynamicSuspectPolicy` (NLB forwarding)

The unit of suspicion moves from URL to **source identity**: the
detector quarantines the agents behaving like a power flood, whatever
they happen to request, which is exactly the gap the probe-and-adjust
attacker exploits against the static list.

Topology placement: in the flat model (and ``placement="dc"``) the
suspect pool is the last ``suspect_pool_size`` servers in rack order,
matching Anti-DOPE's carve-out.  Under a power tree,
``placement="row"`` instead isolates the *last server of every row*, so
each row PDU contains its own quarantine node and a quarantined flood
cannot concentrate whole-row power behind a single PDU.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from .._validation import check_fraction, check_int, check_positive, require
from ..cluster.server import Server
from ..core.dpm import DPMPlanner
from ..core.pdf import split_pools
from ..core.rpm import RequestAwarePowerManager
from ..network.load_balancer import RoundRobinPolicy
from ..network.request import Request, RequestOutcome
from ..obs import Recorder
from ..power.manager import PowerManagementScheme
from ..workloads.catalog import ALL_TYPES, RequestType
from .features import StreamingFeatureExtractor
from .model import OnlineAnomalyModel

__all__ = ["DynamicSuspectPolicy", "OnlineDetectScheme", "PLACEMENTS"]

#: Valid suspect-pool placements (config knob ``detect_placement``).
PLACEMENTS = ("dc", "row")


class DynamicSuspectPolicy:
    """Source-keyed forwarding over a live suspect set.

    The shape of :class:`~repro.core.pdf.PDFPolicy` with two changes:
    requests are classified by ``request.source_id`` membership in a
    set the scheme replaces every control slot (not by URL), and every
    admitted arrival is tapped into the feature extractor — the policy
    sits exactly where the NLB sees post-firewall traffic, in every
    engine execution mode.
    """

    def __init__(
        self,
        extractor: StreamingFeatureExtractor,
        innocent_pool: Sequence[Server],
        suspect_pool: Sequence[Server],
        now,
        obs: Optional[Recorder] = None,
    ) -> None:
        require(len(innocent_pool) > 0, "innocent pool must be non-empty")
        require(len(suspect_pool) > 0, "suspect pool must be non-empty")
        self.extractor = extractor
        self.innocent_pool = list(innocent_pool)
        self.suspect_pool = list(suspect_pool)
        self.suspect_sources: FrozenSet[int] = frozenset()
        self._now = now
        self._innocent_rr = RoundRobinPolicy()
        self._suspect_rr = RoundRobinPolicy()
        self._obs = obs if obs is not None else Recorder()
        self.suspect_forwarded = 0
        self.innocent_forwarded = 0

    def set_suspects(self, sources: FrozenSet[int]) -> None:
        """Replace the quarantined source set (scheme-driven, per slot)."""
        self.suspect_sources = frozenset(sources)

    def select(self, request: Request, servers: Sequence[Server]) -> Server:
        """Tap the arrival, then route by live source classification.

        Like PDF, the NLB's *servers* argument is ignored in favour of
        the pools fixed at construction, crashed servers are skipped,
        and a fully-dead pool fails over to the other pool's survivors.
        """
        self.extractor.observe_arrival(
            request.source_id, request.rtype, self._now()
        )
        self._obs.counters.inc("detect.arrivals_observed")
        if request.source_id in self.suspect_sources:
            pool = self._alive(self.suspect_pool, self.innocent_pool)
            self.suspect_forwarded += 1
            self._obs.counters.inc("detect.suspect_forwarded")
            return self._suspect_rr.select(request, pool)
        pool = self._alive(self.innocent_pool, self.suspect_pool)
        self.innocent_forwarded += 1
        self._obs.counters.inc("detect.innocent_forwarded")
        return self._innocent_rr.select(request, pool)

    def _alive(
        self, preferred: Sequence[Server], fallback: Sequence[Server]
    ) -> Sequence[Server]:
        if all(s.healthy for s in preferred):
            return preferred
        alive = [s for s in preferred if s.healthy]
        if alive:
            return alive
        self._obs.counters.inc("detect.failover_forwarded")
        return [s for s in fallback if s.healthy]

    @property
    def suspect_server_ids(self) -> List[int]:
        """Rack ids of the quarantine pool (the RPM throttle targets)."""
        return [s.server_id for s in self.suspect_pool]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicSuspectPolicy(suspect_servers={self.suspect_server_ids}, "
            f"suspect_sources={len(self.suspect_sources)}, "
            f"suspect_fwd={self.suspect_forwarded})"
        )


class OnlineDetectScheme(PowerManagementScheme):
    """Streaming detection + differentiated power management.

    Parameters
    ----------
    suspect_pool_size:
        Servers isolated for quarantined traffic in ``"dc"`` placement
        (``"row"`` placement isolates one server per row instead).
    tau_s:
        Decay time constant of the feature windows.
    warmup_observations:
        Feature vectors the scorer absorbs before flagging anything.
    enter_threshold / exit_threshold:
        Hysteresis band on the anomaly score.
    placement:
        ``"dc"`` (one pool at the end of rack order) or ``"row"`` (one
        quarantine server per row of the bound power tree; falls back
        to ``"dc"`` in the flat model, which has no rows).
    use_battery_transition / suspect_queue_factor / hysteresis:
        As in :class:`~repro.core.anti_dope.AntiDopeScheme` — the RPM
        half is shared machinery.
    profiled_types:
        Type universe of the entropy feature and energy attribution.
    """

    name = "online-detect"

    def __init__(
        self,
        suspect_pool_size: int = 1,
        tau_s: float = 10.0,
        warmup_observations: int = 100,
        enter_threshold: float = 1.5,
        exit_threshold: float = 1.0,
        placement: str = "dc",
        use_battery_transition: bool = True,
        suspect_queue_factor: Optional[float] = 4.0,
        hysteresis: float = 0.02,
        profiled_types: Sequence[RequestType] = ALL_TYPES,
    ) -> None:
        super().__init__()
        check_int("suspect_pool_size", suspect_pool_size, minimum=1)
        check_positive("tau_s", tau_s)
        check_fraction("hysteresis", hysteresis)
        require(
            placement in PLACEMENTS,
            f"placement must be one of {PLACEMENTS}, got {placement!r}",
        )
        if suspect_queue_factor is not None and suspect_queue_factor < 1.0:
            raise ValueError(
                f"suspect_queue_factor must be >= 1, got {suspect_queue_factor}"
            )
        self.suspect_pool_size = suspect_pool_size
        self.tau_s = float(tau_s)
        self.warmup_observations = warmup_observations
        self.enter_threshold = float(enter_threshold)
        self.exit_threshold = float(exit_threshold)
        self.placement = placement
        self.use_battery_transition = use_battery_transition
        self.suspect_queue_factor = suspect_queue_factor
        self.dpm_hysteresis = hysteresis
        self.profiled_types = tuple(profiled_types)
        self.extractor: Optional[StreamingFeatureExtractor] = None
        self.model: Optional[OnlineAnomalyModel] = None
        self.policy: Optional[DynamicSuspectPolicy] = None
        self.rpm: Optional[RequestAwarePowerManager] = None
        self._queue_capped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, engine, rack, budget, battery, slot_s) -> None:
        """Attach infrastructure; build the pipeline over the flat carve."""
        super().bind(engine, rack, budget, battery, slot_s)
        self.extractor = StreamingFeatureExtractor(
            self.profiled_types,
            tau_s=self.tau_s,
            # The same offline-profiling energy hook the static suspect
            # list uses — here it prices completions online instead.
            energy_of=lambda rtype: rack.power_model.energy_per_request(
                rtype, 1.0
            ),
        )
        self.model = OnlineAnomalyModel(
            seed=0,
            warmup_observations=self.warmup_observations,
            enter_threshold=self.enter_threshold,
            exit_threshold=self.exit_threshold,
        )
        innocent, suspect = split_pools(rack.servers, self.suspect_pool_size)
        self._build_pools(innocent, suspect)
        for server in rack.servers:
            server.completion_sink = self._tee_completion(
                server.completion_sink
            )

    def bind_topology(self, topology) -> None:
        """Overlay the tree; re-carve the pools for row placement."""
        super().bind_topology(topology)
        if self.placement != "row":
            return
        rows = [
            node
            for node in topology.nodes.values()
            if node.kind == "row"
        ]
        require(len(rows) > 0, "row placement needs a tree with row nodes")
        suspect_ids = {
            self.rack.servers[row.stop - 1].server_id
            for row in rows
        }
        suspect = [
            s for s in self.rack.servers if s.server_id in suspect_ids
        ]
        innocent = [
            s for s in self.rack.servers if s.server_id not in suspect_ids
        ]
        require(
            len(innocent) > 0,
            "row placement must leave at least one innocent server",
        )
        self._build_pools(innocent, suspect)

    def _build_pools(
        self, innocent: Sequence[Server], suspect: Sequence[Server]
    ) -> None:
        """(Re)build the forwarding policy and RPM over a pool carve.

        Called once at :meth:`bind` and possibly again at
        :meth:`bind_topology` — the simulation facade asks for the
        forwarding policy only after both, so the NLB always sees the
        final carve.
        """
        self.policy = DynamicSuspectPolicy(
            self.extractor,
            innocent,
            suspect,
            now=lambda: self.engine.now,
            obs=self.engine.obs,
        )
        self.rpm = RequestAwarePowerManager(
            suspect_pool=self.policy.suspect_pool,
            innocent_pool=self.policy.innocent_pool,
            budget=self.budget,
            battery=self.battery if self.use_battery_transition else None,
            planner=DPMPlanner(self.rack.ladder.max_level, self.dpm_hysteresis),
            slot_s=self.slot_s,
            # Plan against perceived power so an attached (possibly
            # faulty) sensor degrades the controller too.
            power_reader=self.current_power,
        )

    def _tee_completion(self, original):
        """Wrap a server's completion sink with the attribution tap.

        Completion sinks fire per request in both the scalar and the
        batched engine; the fluid path only bulk-absorbs firewall drops,
        which never reach a server — so the tap is engine-mode safe.
        """

        def tee(request, outcome, now):
            if outcome is RequestOutcome.COMPLETED:
                self.extractor.observe_completion(
                    request.source_id, request.rtype, now
                )
                self.engine.obs.counters.inc("detect.completions_observed")
            if original is not None:
                original(request, outcome, now)

        return tee

    def forwarding_policy(self, servers: Sequence[Server]) -> DynamicSuspectPolicy:
        """The dynamic suspect policy for the NLB.

        Queue capping happens here, not in :meth:`bind`: the facade
        fetches the policy only after :meth:`bind_topology`, so the
        short quarantine queue lands on the *final* pool carve (a
        ``"row"`` re-carve must not leave a stray capped server behind).
        """
        self._require_bound()
        if self.suspect_queue_factor is not None and not self._queue_capped:
            for server in self.policy.suspect_pool:
                cap = int(self.suspect_queue_factor * server.num_workers)
                server.queue_capacity = min(server.queue_capacity, cap)
            self._queue_capped = True
        return self.policy

    # ------------------------------------------------------------------
    # Control slot
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Calibrate, score every live source, re-carve the suspect set,
        then run one RPM slot against the updated pools."""
        self._require_bound()
        now = self.engine.now
        counters = self.engine.obs.counters
        self._calibrate(counters)
        suspects = set()
        for source_id in self.extractor.sources():
            feats = self.extractor.features(source_id, now)
            verdict = self.model.update(source_id, feats)
            if verdict:
                suspects.add(source_id)
        previous = self.policy.suspect_sources
        entered = len(suspects - previous)
        exited = len(previous - suspects)
        if entered:
            counters.inc("detect.quarantine_enters", entered)
        if exited:
            counters.inc("detect.quarantine_exits", exited)
        if not self.model.warmed_up:
            counters.inc("detect.warmup_slots")
        self.policy.set_suspects(frozenset(suspects))
        self.rpm.step(now)

    def _calibrate(self, counters) -> None:
        """Derive the power-attribution gain from the sensing path.

        ``current_power()`` walks the bounded-staleness ladder (exact →
        sensed → last-known-good → worst-case nameplate), so the gain
        inherits exactly the degradation the chaos layer injects; the
        extractor clamps it, keeping scores finite under a blind meter.
        """
        modelled = self.rack.total_power()
        if modelled <= 0.0:
            return
        gain = self.current_power() / modelled
        self.extractor.set_calibration(gain)
        if self.extractor.gain_clamped:
            counters.inc("detect.calibration_clamped")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def suspect_sources(self) -> FrozenSet[int]:
        """Source ids currently quarantined by the detector."""
        self._require_bound()
        return self.policy.suspect_sources

    @property
    def suspect_server_ids(self) -> List[int]:
        """Rack ids of the quarantine server pool."""
        self._require_bound()
        return self.policy.suspect_server_ids

    def source_scores(self) -> Dict[int, float]:
        """Last anomaly score per source (detector audit trail)."""
        self._require_bound()
        return dict(sorted(self.model.last_scores.items()))

    def report(self) -> Dict[str, object]:
        """JSON-ready detector state (see ``analysis.export``)."""
        self._require_bound()
        return {
            "scheme": self.name,
            "placement": self.placement,
            "suspect_servers": self.suspect_server_ids,
            "suspect_sources": sorted(self.policy.suspect_sources),
            "source_scores": {
                str(sid): score
                for sid, score in sorted(self.model.last_scores.items())
            },
            "observations": self.model.observations,
            "warmed_up": self.model.warmed_up,
            "calibration_gain": self.extractor.calibration_gain,
            "model": self.model.fingerprint(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.bound:
            return "OnlineDetectScheme(unbound)"
        return (
            f"OnlineDetectScheme(placement={self.placement!r}, "
            f"suspect_servers={self.suspect_server_ids}, "
            f"quarantined={len(self.policy.suspect_sources)})"
        )
