"""repro.detect — streaming feature extraction + online DOPE detection.

An inference pipeline on top of the simulator: per-source behavioural
features over exponential-decay windows (:mod:`~repro.detect.features`),
a deterministic streaming anomaly scorer with warm-up and hysteresis
(:mod:`~repro.detect.model`), and the :class:`OnlineDetectScheme` fifth
Table-2 scheme that feeds live verdicts into a dynamic suspect pool on
the NLB forwarding path (:mod:`~repro.detect.scheme`).  The scheme
registry (:mod:`~repro.detect.registry`) is the single factory table
every by-name driver (CLI, chaos, region) resolves through.
"""

from .features import SourceFeatures, StreamingFeatureExtractor
from .model import OnlineAnomalyModel
from .registry import (
    SCHEME_FACTORIES,
    SCHEME_NAMES,
    make_scheme,
    validate_scheme_names,
)
from .scheme import PLACEMENTS, DynamicSuspectPolicy, OnlineDetectScheme

__all__ = [
    "SourceFeatures",
    "StreamingFeatureExtractor",
    "OnlineAnomalyModel",
    "DynamicSuspectPolicy",
    "OnlineDetectScheme",
    "PLACEMENTS",
    "SCHEME_FACTORIES",
    "SCHEME_NAMES",
    "make_scheme",
    "validate_scheme_names",
]
