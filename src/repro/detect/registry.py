"""The six-scheme factory registry (Table 2 plus OnlineDetect/Prediction).

Every driver that builds schemes by name — the CLI, the chaos sweep,
the region analyzer — resolves through this one table, so adding a
scheme is a one-line diff here and the ``--scheme``/``--schemes``
surface everywhere picks it up with consistent validation errors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.anti_dope import AntiDopeScheme
from ..power.capping import CappingScheme
from ..power.manager import PowerManagementScheme
from ..power.prediction import PredictionScheme
from ..power.shaving import ShavingScheme
from ..power.token_bucket import TokenScheme
from .scheme import OnlineDetectScheme

if TYPE_CHECKING:  # pragma: no cover - layering: detect sits below sim
    from ..sim.config import SimulationConfig

__all__ = [
    "SCHEME_FACTORIES",
    "SCHEME_NAMES",
    "make_scheme",
    "validate_scheme_names",
]

SCHEME_FACTORIES: Dict[str, Callable[[], PowerManagementScheme]] = {
    "capping": CappingScheme,
    "shaving": ShavingScheme,
    "token": TokenScheme,
    "anti-dope": AntiDopeScheme,
    "online-detect": OnlineDetectScheme,
    "prediction": PredictionScheme,
}

#: Stable (sorted) scheme-name tuple for CLI help and defaults.
SCHEME_NAMES: Tuple[str, ...] = tuple(sorted(SCHEME_FACTORIES))


def validate_scheme_names(names: Iterable[str]) -> List[str]:
    """Return *names* as a list; raise a clear error on unknown ones."""
    requested = list(names)
    unknown = sorted(set(requested) - set(SCHEME_FACTORIES))
    if unknown:
        raise ValueError(
            f"unknown scheme name(s) {unknown}; "
            f"choose from {list(SCHEME_NAMES)}"
        )
    return requested


def make_scheme(
    name: str, config: Optional["SimulationConfig"] = None
) -> PowerManagementScheme:
    """Build scheme *name*, threading config-level scheme knobs.

    ``online-detect`` reads ``config.detect_placement`` (per-DC vs
    per-row quarantine pool) and ``prediction`` reads
    ``config.prediction_horizon_s`` (power-history horizon) when a
    config is supplied; every other scheme ignores the config entirely.
    """
    validate_scheme_names([name])
    if name == "online-detect" and config is not None:
        return OnlineDetectScheme(placement=config.detect_placement)
    if name == "prediction" and config is not None:
        return PredictionScheme(horizon_s=config.prediction_horizon_s)
    return SCHEME_FACTORIES[name]()
