"""Streaming per-source feature extraction (the detector's front end).

The online detector watches the same two event streams the production
NLB already has: request **arrivals** (seen by the forwarding policy
after the perimeter firewall) and server **completions** (the per-request
callback every server already fires for the metrics layer).  From those
two taps :class:`StreamingFeatureExtractor` maintains, per source
identity, four behavioural features over exponential-decay windows:

``rate_rps``
    Decayed arrival rate — the volume axis the perimeter defence also
    sees, kept so the scorer can separate "many light requests" from
    "few heavy ones".
``burstiness``
    Squared coefficient of variation of inter-arrival gaps (EWMA of the
    gap and of its square).  Closed-loop attack tools pace themselves
    almost periodically (CV² → 0) while human think times are highly
    dispersed — either extreme is informative.
``entropy_bits``
    Shannon entropy of the decayed request-type histogram.  A flood tool
    hammering one or two profiled heavy endpoints has near-zero type
    entropy; the AliOS population mixes the whole catalog.
``power_w``
    PowerTracer-style attributed power: decayed sum of per-request
    energy estimates from the completion stream, divided by the window
    time constant, scaled by a calibration gain the scheme derives from
    the (possibly degraded) rack power sensor.  This is the feature the
    DOPE threat model cannot dodge for free — lowering it means lowering
    the attack's power draw.

Every window is a plain exponential decay with one shared time constant
``tau_s``: state multiplied by ``exp(-dt/tau)`` on touch, so memory per
source is O(number of catalog types), independent of traffic volume.
All arithmetic is pure float math driven by simulation time — no RNG,
no wall clock — so same-seed runs extract byte-identical features in
every engine execution mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from .._validation import check_positive
from ..workloads.catalog import RequestType

__all__ = ["SourceFeatures", "StreamingFeatureExtractor"]

#: Calibration gain clamp.  The gain rescales attributed power by the
#: ratio of sensed to modelled rack power; under ``meter_noise`` it
#: wobbles near 1.0, under a long ``meter_dropout`` the sensing ladder
#: answers worst-case nameplate and the raw ratio explodes.  Clamping
#: keeps degradation *graceful*: a blind detector scores every source
#: with the same bounded gain instead of amplifying garbage.
GAIN_MIN = 0.5
GAIN_MAX = 2.0


@dataclass(frozen=True)
class SourceFeatures:
    """One source's feature vector at one instant."""

    rate_rps: float
    burstiness: float
    entropy_bits: float
    power_w: float

    def as_tuple(self) -> tuple:
        """Fixed feature order consumed by the scorer."""
        return (self.rate_rps, self.burstiness, self.entropy_bits, self.power_w)


class _SourceWindow:
    """Exponential-decay state of one source (O(1) memory)."""

    __slots__ = (
        "last_touch_s",
        "count",
        "last_arrival_s",
        "gap_mean_s",
        "gap_sq_mean_s2",
        "gap_samples",
        "type_counts",
        "energy_j",
    )

    def __init__(self, num_types: int, now: float) -> None:
        self.last_touch_s = now
        self.count = 0.0
        self.last_arrival_s: float = now
        self.gap_mean_s = 0.0
        self.gap_sq_mean_s2 = 0.0
        self.gap_samples = 0.0
        self.type_counts: List[float] = [0.0] * num_types
        self.energy_j = 0.0

    def decay_to(self, now: float, tau_s: float) -> None:
        dt = now - self.last_touch_s
        if dt <= 0.0:
            return
        factor = math.exp(-dt / tau_s)
        self.count *= factor
        self.energy_j *= factor
        self.gap_samples *= factor
        for slot in range(len(self.type_counts)):
            self.type_counts[slot] *= factor
        self.last_touch_s = now


class StreamingFeatureExtractor:
    """Per-source behavioural features over exponential-decay windows.

    Parameters
    ----------
    types:
        The catalog universe the entropy feature normalises over; the
        type→slot mapping is fixed at construction so feature vectors
        are stable across the run.
    tau_s:
        Decay time constant shared by every window.  An event from
        ``tau_s`` seconds ago carries weight ``1/e``; the effective
        window the features describe is the last few ``tau_s``.
    energy_of:
        Per-request energy estimate (joules at full frequency) used for
        power attribution — the scheme wires the rack power model's
        ``energy_per_request`` here, the same hook the static suspect
        list profiles offline.
    """

    def __init__(
        self,
        types: Sequence[RequestType],
        tau_s: float = 10.0,
        energy_of: Callable[[RequestType], float] = lambda rtype: 1.0,
    ) -> None:
        check_positive("tau_s", tau_s)
        if not types:
            raise ValueError("need at least one request type")
        self.tau_s = float(tau_s)
        self._slot_of: Dict[str, int] = {
            rtype.name: slot for slot, rtype in enumerate(types)
        }
        self._num_types = len(self._slot_of)
        self._energy_of = energy_of
        self._gain = 1.0
        self.gain_clamped = False
        self._windows: Dict[int, _SourceWindow] = {}
        #: EWMA weight of one new inter-arrival gap sample.
        self._gap_alpha = 0.25

    # ------------------------------------------------------------------
    # Event taps
    # ------------------------------------------------------------------
    def observe_arrival(
        self, source_id: int, rtype: RequestType, now: float
    ) -> None:
        """Fold one admitted arrival into the source's windows."""
        window = self._window(source_id, now)
        window.decay_to(now, self.tau_s)
        if window.count > 0.0:
            gap = now - window.last_arrival_s
            a = self._gap_alpha
            window.gap_mean_s += a * (gap - window.gap_mean_s)
            window.gap_sq_mean_s2 += a * (gap * gap - window.gap_sq_mean_s2)
            window.gap_samples += 1.0
        window.last_arrival_s = now
        window.count += 1.0
        slot = self._slot_of.get(rtype.name)
        if slot is not None:
            window.type_counts[slot] += 1.0

    def observe_completion(
        self, source_id: int, rtype: RequestType, now: float
    ) -> None:
        """Attribute one served request's energy back to its source."""
        window = self._window(source_id, now)
        window.decay_to(now, self.tau_s)
        window.energy_j += float(self._energy_of(rtype))

    def set_calibration(self, gain: float) -> None:
        """Rescale attributed power by the sensed/modelled ratio.

        The raw *gain* is clamped to ``[GAIN_MIN, GAIN_MAX]`` — the
        degradation contract under meter faults (see module docstring).
        :attr:`gain_clamped` reports whether the last call was clamped.
        """
        clamped = min(max(float(gain), GAIN_MIN), GAIN_MAX)
        self.gain_clamped = clamped != float(gain)
        self._gain = clamped

    @property
    def calibration_gain(self) -> float:
        """The clamped gain currently applied to the power feature."""
        return self._gain

    # ------------------------------------------------------------------
    # Feature readout
    # ------------------------------------------------------------------
    def sources(self) -> Iterable[int]:
        """Every source id with live window state, in sorted order."""
        return sorted(self._windows)

    def features(self, source_id: int, now: float) -> SourceFeatures:
        """The source's feature vector at *now* (windows decayed first)."""
        window = self._window(source_id, now)
        window.decay_to(now, self.tau_s)
        rate = window.count / self.tau_s
        burstiness = 0.0
        # Guard on the *squared* mean: a subnormal gap mean (~1e-200)
        # is positive while its square underflows to exactly 0.0.
        mean_sq = window.gap_mean_s * window.gap_mean_s
        if window.gap_samples > 0.0 and mean_sq > 0.0:
            variance = max(0.0, window.gap_sq_mean_s2 - mean_sq)
            burstiness = variance / mean_sq
        total = sum(window.type_counts)
        entropy = 0.0
        if total > 0.0:
            for count in window.type_counts:
                if count > 0.0:
                    p = count / total
                    entropy -= p * math.log2(p)
        power_w = self._gain * window.energy_j / self.tau_s
        return SourceFeatures(
            rate_rps=rate,
            burstiness=burstiness,
            entropy_bits=entropy,
            power_w=power_w,
        )

    def forget(self, source_id: int) -> None:
        """Drop a source's window (e.g. a rotated-out agent identity)."""
        self._windows.pop(source_id, None)

    @property
    def max_entropy_bits(self) -> float:
        """Upper bound of the entropy feature: log2 of the type universe."""
        return math.log2(self._num_types) if self._num_types > 1 else 0.0

    def _window(self, source_id: int, now: float) -> _SourceWindow:
        window = self._windows.get(source_id)
        if window is None:
            window = _SourceWindow(self._num_types, now)
            self._windows[source_id] = window
        return window

    def __len__(self) -> int:
        return len(self._windows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingFeatureExtractor(sources={len(self._windows)}, "
            f"tau={self.tau_s}s, gain={self._gain:.2f})"
        )
