"""Online anomaly scoring with warm-up and hysteresis (detector back end).

A dependency-free streaming z-score model in the shape of the per-source
behavioural scorers used against web-server application floods: the
population of per-source feature vectors defines "normal", and a source
whose vector sits far from the population mean — in units of the
population's own spread — is anomalous.  Both moments are exponentially
weighted, so the baseline tracks legitimate drift (diurnal load, mix
changes) while a flood that arrives faster than the decay constant
stands out.

Design constraints, in order:

* **Deterministic.**  The model draws no random numbers; the ``seed``
  parameter is recorded for run fingerprints only.  Scoring a fixed
  observation sequence is byte-identical on every platform and engine
  execution mode (pure float arithmetic, fixed iteration order supplied
  by the caller).
* **Warm-up.**  Until ``warmup_observations`` vectors have been folded
  in, the population moments are still forming and every verdict is
  "innocent" — the cold-start false-positive guard.
* **Hysteresis.**  A source becomes suspect when its score crosses
  ``enter_threshold`` and stays suspect until the score falls below the
  *lower* ``exit_threshold``: the forwarding pool must not flap on a
  source hovering at the boundary, because every flip reshuffles which
  servers its requests land on.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from .._validation import check_int, check_positive, require
from .features import SourceFeatures

__all__ = ["OnlineAnomalyModel"]

#: Floor of the per-feature standard deviation, in units of the feature
#: itself.  A population that agrees perfectly on a feature would
#: otherwise turn an infinitesimal deviation into an unbounded z-score.
_MIN_STD_FRACTION = 0.05
_MIN_STD_ABS = 1e-6


class OnlineAnomalyModel:
    """Streaming population z-score with hysteresis verdicts.

    Parameters
    ----------
    seed:
        Recorded in :meth:`fingerprint`; the model itself is
        deterministic and draws nothing from it.
    warmup_observations:
        Vectors to absorb before any source may be flagged.
    enter_threshold / exit_threshold:
        Hysteresis band on the anomaly score (mean absolute z across
        features).  ``enter > exit`` is required.
    decay:
        Per-observation retention of the population moments (EW mean and
        EW mean-of-squares).  With ~one observation per source per
        control slot, ``0.995`` remembers a few hundred slots of
        population history.
    """

    def __init__(
        self,
        seed: int = 0,
        warmup_observations: int = 100,
        enter_threshold: float = 1.5,
        exit_threshold: float = 1.0,
        decay: float = 0.995,
    ) -> None:
        check_int("seed", seed, minimum=0)
        check_int("warmup_observations", warmup_observations, minimum=1)
        check_positive("enter_threshold", enter_threshold)
        check_positive("exit_threshold", exit_threshold)
        require(
            enter_threshold > exit_threshold,
            f"enter_threshold ({enter_threshold}) must exceed "
            f"exit_threshold ({exit_threshold}) for hysteresis to hold",
        )
        require(0.0 < decay < 1.0, f"decay must be in (0,1), got {decay}")
        self.seed = seed
        self.warmup_observations = warmup_observations
        self.enter_threshold = float(enter_threshold)
        self.exit_threshold = float(exit_threshold)
        self.decay = float(decay)
        self.observations = 0
        self._mean: Tuple[float, ...] = ()
        self._sq_mean: Tuple[float, ...] = ()
        self._suspects: Dict[int, bool] = {}
        self.last_scores: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Population moments
    # ------------------------------------------------------------------
    def observe(self, features: SourceFeatures) -> None:
        """Fold one feature vector into the population moments."""
        vec = features.as_tuple()
        if not self._mean:
            self._mean = tuple(vec)
            self._sq_mean = tuple(v * v for v in vec)
        else:
            d = self.decay
            self._mean = tuple(
                d * m + (1.0 - d) * v for m, v in zip(self._mean, vec)
            )
            self._sq_mean = tuple(
                d * s + (1.0 - d) * v * v for s, v in zip(self._sq_mean, vec)
            )
        self.observations += 1

    def score(self, features: SourceFeatures) -> float:
        """Anomaly score: mean absolute z across the feature vector."""
        if not self._mean:
            return 0.0
        vec = features.as_tuple()
        total = 0.0
        for value, mean, sq_mean in zip(vec, self._mean, self._sq_mean):
            variance = max(0.0, sq_mean - mean * mean)
            std = math.sqrt(variance)
            floor = max(_MIN_STD_ABS, _MIN_STD_FRACTION * abs(mean))
            std = max(std, floor)
            total += abs(value - mean) / std
        return total / len(vec)

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    @property
    def warmed_up(self) -> bool:
        """Whether the warm-up period has elapsed."""
        return self.observations >= self.warmup_observations

    def update(self, source_id: int, features: SourceFeatures) -> bool:
        """Score *source_id*, fold the vector in, return the verdict.

        Scoring happens against the moments *before* this vector is
        absorbed, so a source never dilutes the baseline it is being
        judged against within the same call.  The verdict applies
        warm-up and the enter/exit hysteresis band.
        """
        value = self.score(features)
        self.observe(features)
        self.last_scores[source_id] = value
        if not self.warmed_up:
            self._suspects[source_id] = False
            return False
        currently = self._suspects.get(source_id, False)
        if currently:
            verdict = value >= self.exit_threshold
        else:
            verdict = value >= self.enter_threshold
        self._suspects[source_id] = verdict
        return verdict

    def is_suspect(self, source_id: int) -> bool:
        """The source's current hysteresis state."""
        return self._suspects.get(source_id, False)

    def forget(self, source_id: int) -> None:
        """Drop a source's verdict state and last score."""
        self._suspects.pop(source_id, None)
        self.last_scores.pop(source_id, None)

    def fingerprint(self) -> Dict[str, object]:
        """JSON-ready identity of this model configuration."""
        return {
            "seed": self.seed,
            "warmup_observations": self.warmup_observations,
            "enter_threshold": self.enter_threshold,
            "exit_threshold": self.exit_threshold,
            "decay": self.decay,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flagged = sum(1 for v in self._suspects.values() if v)
        return (
            f"OnlineAnomalyModel(obs={self.observations}, "
            f"suspects={flagged}, warmed_up={self.warmed_up})"
        )
