"""Single source of the package version.

Kept in a leaf module (no intra-package imports) so low layers — the
result cache keys every entry by this string — can read it without
importing the package root.  Bump it whenever a change can alter any
simulated number; stale cache entries are invalidated by the bump.
"""

__version__ = "1.2.0"
