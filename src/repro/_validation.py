"""Shared argument-validation helpers.

Every public constructor in :mod:`repro` validates its inputs eagerly so
that configuration mistakes surface at build time rather than as silent
mis-simulation.  These helpers keep the checks terse and the error
messages uniform.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float) -> float:
    """Validate that *value* is a finite number strictly greater than zero."""
    check_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Validate that *value* is a finite number >= 0."""
    check_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_finite(name: str, value: float) -> float:
    """Validate that *value* is a real, finite number (bools rejected)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_fraction(name: str, value: float, *, inclusive: bool = True) -> float:
    """Validate that *value* lies in ``[0, 1]`` (or ``(0, 1)`` if exclusive)."""
    check_finite(name, value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_int(name: str, value: int, *, minimum: Optional[int] = None) -> int:
    """Validate that *value* is an integer, optionally bounded below."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability_vector(name: str, values: Sequence[float]) -> list:
    """Validate a discrete distribution: non-negative entries summing to ~1."""
    vals = [check_non_negative(f"{name}[{i}]", v) for i, v in enumerate(values)]
    total = sum(vals)
    if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
        raise ValueError(f"{name} must sum to 1, got sum={total!r}")
    return vals


def check_sorted_unique(name: str, values: Iterable[float]) -> list:
    """Validate that *values* are strictly increasing."""
    vals = list(values)
    if not vals:
        raise ValueError(f"{name} must be non-empty")
    for a, b in zip(vals, vals[1:]):
        if b <= a:
            raise ValueError(f"{name} must be strictly increasing, got {vals!r}")
    return vals
