"""Network substrate: requests, sources, firewall, load balancer."""

from .anomaly import AggregateAnomalyDetector, AnomalyAlarm
from .fabric import FlowletEcmpFabric, ecmp_path, splitmix64
from .firewall import NullFirewall, RateLimitFirewall
from .load_balancer import (
    LeastLoadedPolicy,
    NetworkLoadBalancer,
    RandomPolicy,
    RetryPolicy,
    RoundRobinPolicy,
)
from .request import (
    FAULT_OUTCOMES,
    POLICY_OUTCOMES,
    CompletionRecord,
    Request,
    RequestOutcome,
)
from .sources import SourcePool, SourceRegistry

__all__ = [
    "Request",
    "RequestOutcome",
    "FAULT_OUTCOMES",
    "POLICY_OUTCOMES",
    "CompletionRecord",
    "SourcePool",
    "SourceRegistry",
    "RateLimitFirewall",
    "NullFirewall",
    "NetworkLoadBalancer",
    "RetryPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "RandomPolicy",
    "FlowletEcmpFabric",
    "ecmp_path",
    "splitmix64",
    "AggregateAnomalyDetector",
    "AnomalyAlarm",
]
