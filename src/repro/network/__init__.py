"""Network substrate: requests, sources, firewall, load balancer."""

from .anomaly import AggregateAnomalyDetector, AnomalyAlarm
from .firewall import NullFirewall, RateLimitFirewall
from .load_balancer import (
    LeastLoadedPolicy,
    NetworkLoadBalancer,
    RandomPolicy,
    RoundRobinPolicy,
)
from .request import CompletionRecord, Request, RequestOutcome
from .sources import SourcePool, SourceRegistry

__all__ = [
    "Request",
    "RequestOutcome",
    "CompletionRecord",
    "SourcePool",
    "SourceRegistry",
    "RateLimitFirewall",
    "NullFirewall",
    "NetworkLoadBalancer",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "RandomPolicy",
    "AggregateAnomalyDetector",
    "AnomalyAlarm",
]
