"""Traffic-source identities.

The firewall in the paper (DDoS-deflate) rate-limits *per source IP*,
so source identity is the pivot of the whole DOPE evasion story: one
attacker distributing the same aggregate rate over many agents slides
under the per-source threshold.  This module provides a tiny registry
that hands out integer source ids partitioned into populations, so both
the firewall and the metrics layer can attribute traffic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from .._validation import check_int, require
from ..workloads.catalog import TrafficClass

__all__ = [
    "SourcePool",
    "SourceRegistry",
]


class SourcePool:
    """A block of source identities belonging to one population.

    Parameters
    ----------
    label:
        Human-readable population name (e.g. ``"botnet"``, ``"alios"``).
    traffic_class:
        The :class:`~repro.workloads.catalog.TrafficClass` of requests
        these sources emit.
    size:
        Number of distinct agents in the pool.
    first_id:
        First id of the contiguous id block (assigned by the registry).
    """

    __slots__ = ("label", "traffic_class", "size", "first_id")

    def __init__(
        self,
        label: str,
        traffic_class: TrafficClass,
        size: int,
        first_id: int,
    ) -> None:
        require(bool(label), "label must be non-empty")
        check_int("size", size, minimum=1)
        check_int("first_id", first_id, minimum=0)
        self.label = label
        self.traffic_class = traffic_class
        self.size = size
        self.first_id = first_id

    @property
    def ids(self) -> range:
        """The contiguous id block of this pool."""
        return range(self.first_id, self.first_id + self.size)

    def contains(self, source_id: int) -> bool:
        """True when *source_id* belongs to this pool."""
        return self.first_id <= source_id < self.first_id + self.size

    def __iter__(self) -> Iterator[int]:
        return iter(self.ids)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SourcePool({self.label!r}, {self.traffic_class.value}, "
            f"ids={self.first_id}..{self.first_id + self.size - 1})"
        )


class SourceRegistry:
    """Allocates non-overlapping source-id blocks to populations."""

    def __init__(self) -> None:
        self._next_id = 0
        self._pools: List[SourcePool] = []
        self._by_label: Dict[str, SourcePool] = {}

    def allocate(
        self, label: str, traffic_class: TrafficClass, size: int
    ) -> SourcePool:
        """Create a new pool of *size* agents under *label*."""
        if label in self._by_label:
            raise ValueError(f"source pool {label!r} already allocated")
        pool = SourcePool(label, traffic_class, size, self._next_id)
        self._next_id += size
        self._pools.append(pool)
        self._by_label[label] = pool
        return pool

    def pool_of(self, source_id: int) -> SourcePool:
        """Return the pool owning *source_id*."""
        for pool in self._pools:
            if pool.contains(source_id):
                return pool
        raise KeyError(f"source id {source_id} not allocated")

    def get(self, label: str) -> SourcePool:
        """Return the pool registered under *label*."""
        try:
            return self._by_label[label]
        except KeyError:
            raise KeyError(
                f"no source pool {label!r}; known: {sorted(self._by_label)}"
            ) from None

    @property
    def pools(self) -> List[SourcePool]:
        """All allocated pools, in allocation order."""
        return list(self._pools)

    @property
    def total_sources(self) -> int:
        """Total number of allocated source ids."""
        return self._next_id
