"""Rate-limit firewall modelled on DDoS-deflate.

DDoS-deflate — the tool the paper uses as its representative perimeter
defence — periodically polls ``netstat``, counts connections per source
IP, and bans any source whose count exceeds a configured threshold
(default 150) for a fixed ban period.  Two properties of that design
are load-bearing for the paper:

* **the polling lag**: traffic flows freely until the first poll fires,
  which is why Fig. 10 shows power spikes *before* the dotted
  (firewalled) CDFs flatten; and
* **per-source accounting**: an attacker who spreads the same aggregate
  rate across many agents never trips the threshold — the evasion that
  defines the DOPE region (Fig. 11).

:class:`RateLimitFirewall` reproduces both with a window counter per
source and an explicit poll event driven by the simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from .._validation import check_int, check_positive
from ..sim.engine import EventEngine
from ..sim.events import PRIORITY_MONITOR

__all__ = [
    "FirewallStats",
    "RateLimitFirewall",
    "NullFirewall",
]


@dataclass
class FirewallStats:
    """Counters exposed for analysis and the Fig. 10/11 benches.

    ``bans`` is the exact lifetime total; ``banned_history`` keeps only
    the most recent ``(time_s, source_id)`` ban events up to the
    firewall's ``history_cap`` — on a multi-hour run the event list
    would otherwise grow without bound while the totals already carry
    every number the reports use.
    """

    polls: int = 0
    admitted: int = 0
    rejected: int = 0
    bans: int = 0
    first_detection_time_s: Optional[float] = None
    banned_history: List[tuple] = field(default_factory=list)


class RateLimitFirewall:
    """Per-source threshold firewall with periodic polling.

    Parameters
    ----------
    threshold_rps:
        Ban a source whose observed rate over the last poll window
        exceeds this many requests/second (deflate default: 150).
    poll_interval_s:
        Seconds between netstat polls.  Requests arriving before the
        first poll are never examined — the "initiating delay".
    ban_duration_s:
        How long a banned source stays blocked (deflate default 600 s).
    history_cap:
        Maximum ban events retained in ``stats.banned_history`` (the
        oldest are discarded first); ``stats.bans`` stays exact.
    """

    def __init__(
        self,
        threshold_rps: float = 150.0,
        poll_interval_s: float = 10.0,
        ban_duration_s: float = 600.0,
        history_cap: int = 1024,
    ) -> None:
        check_positive("threshold_rps", threshold_rps)
        check_positive("poll_interval_s", poll_interval_s)
        check_positive("ban_duration_s", ban_duration_s)
        check_int("history_cap", history_cap, minimum=0)
        self.threshold_rps = float(threshold_rps)
        self.poll_interval_s = float(poll_interval_s)
        self.ban_duration_s = float(ban_duration_s)
        self.history_cap = history_cap
        self._window_counts: Dict[int, int] = {}
        self._banned_until: Dict[int, float] = {}
        self.stats = FirewallStats()
        self._stop_poll: Optional[Callable[[], None]] = None
        self._now: Callable[[], float] = lambda: 0.0

    # ------------------------------------------------------------------
    # Engine wiring
    # ------------------------------------------------------------------
    def attach(self, engine: EventEngine) -> None:
        """Start the periodic poll on *engine* (idempotent per firewall)."""
        if self._stop_poll is not None:
            raise RuntimeError("firewall already attached to an engine")
        self._now = lambda: engine.now
        self._stop_poll = engine.every(
            self.poll_interval_s, self.poll, priority=PRIORITY_MONITOR
        )

    def detach(self) -> None:
        """Stop polling (e.g. for an unprotected baseline mid-run)."""
        if self._stop_poll is not None:
            self._stop_poll()
            self._stop_poll = None

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def admit(self, source_id: int, now: Optional[float] = None) -> bool:
        """Admission check for one request from *source_id*.

        Counts the request toward the source's current window and
        returns ``False`` when the source is currently banned.
        """
        t = self._now() if now is None else now
        until = self._banned_until.get(source_id)
        if until is not None:
            if t < until:
                self.stats.rejected += 1
                return False
            del self._banned_until[source_id]
        self._window_counts[source_id] = self._window_counts.get(source_id, 0) + 1
        self.stats.admitted += 1
        return True

    def poll(self) -> None:
        """One netstat sweep: ban every source above threshold, reset window."""
        t = self._now()
        self.stats.polls += 1
        limit = self.threshold_rps * self.poll_interval_s
        history = self.stats.banned_history
        for source_id, count in self._window_counts.items():
            if count > limit:
                self._banned_until[source_id] = t + self.ban_duration_s
                self.stats.bans += 1
                history.append((t, source_id))
                if self.stats.first_detection_time_s is None:
                    self.stats.first_detection_time_s = t
        if len(history) > self.history_cap:
            del history[: len(history) - self.history_cap]
        self._window_counts.clear()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def is_banned(self, source_id: int, now: Optional[float] = None) -> bool:
        """True when *source_id* is currently blocked."""
        t = self._now() if now is None else now
        until = self._banned_until.get(source_id)
        return until is not None and t < until

    def ban_horizon(
        self, source_ids: Iterable[int], now: Optional[float] = None
    ) -> Optional[float]:
        """Earliest ban expiry among *source_ids*, if all are banned.

        Returns the time until which **every** given source is
        guaranteed to be rejected at admission, or ``None`` when any of
        them is currently admissible (or *source_ids* is empty).  The
        fluid-mode drain uses this as its proof of steadiness: up to
        the horizon, arrivals from the pool deterministically take the
        firewall-drop path.
        """
        banned_until = self._banned_until
        if not banned_until:
            return None
        t = self._now() if now is None else now
        horizon: Optional[float] = None
        for source_id in source_ids:
            until = banned_until.get(source_id)
            if until is None or until <= t:
                return None
            if horizon is None or until < horizon:
                horizon = until
        return horizon

    def record_bulk_rejections(self, count: int) -> None:
        """Account *count* pre-aggregated rejections (fluid-drain path).

        Banned-source rejections do not touch window counts, so a bulk
        rejection is pure stats bookkeeping — identical in effect to
        *count* individual :meth:`admit` calls against banned sources.
        """
        self.stats.rejected += count

    def banned_sources(self, now: Optional[float] = None) -> Set[int]:
        """Set of sources blocked at *now*."""
        t = self._now() if now is None else now
        return {s for s, until in self._banned_until.items() if t < until}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RateLimitFirewall(threshold={self.threshold_rps:.0f}rps, "
            f"poll={self.poll_interval_s:.0f}s, bans={self.stats.bans})"
        )


class NullFirewall(RateLimitFirewall):
    """A firewall that admits everything — the 'without firewall' arm."""

    def __init__(self) -> None:
        super().__init__(threshold_rps=1e12, poll_interval_s=1e9)

    def attach(self, engine: EventEngine) -> None:
        """Bind the clock without starting any polling."""
        self._now = lambda: engine.now

    def admit(self, source_id: int, now: Optional[float] = None) -> bool:
        """Admit unconditionally."""
        self.stats.admitted += 1
        return True
