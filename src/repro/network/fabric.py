"""ECMP + flowlet forwarding over a small 2-tier fat-tree.

The flat model rotates one NLB across every server; a real facility
hashes each flow onto one of ``num_spines × num_racks`` equal-cost paths
at the fabric edge.  Plain per-flow ECMP *pins* a flow to its hashed
path for life — exactly what a DOPE source wants, because its elephant
flow then concentrates power on one rack PDU.  Flowlet switching breaks
the pin: when a flow pauses for longer than ``flowlet_gap_s`` the next
burst can safely re-hash to a new path without reordering, so sustained
attack flows spread across racks instead of heating one of them.

:class:`FlowletEcmpFabric` is a drop-in
:class:`~repro.network.load_balancer.ForwardingPolicy`: the NLB still
owns ingress (firewall → admission → healthy filter) and hands this
policy the healthy server list; the fabric picks the rack via the path
hash and rotates within the rack.  Hashing is a seeded splitmix64 mix —
never Python's per-process-salted ``hash()`` — so path choices are
byte-identical across runs, engines and worker processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .._validation import check_int, check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.server import Server
    from ..obs import Recorder
    from .request import Request

__all__ = [
    "splitmix64",
    "ecmp_path",
    "FlowletEcmpFabric",
]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(x: int) -> int:
    """One splitmix64 finalisation round: a fast 64-bit avalanche mix."""
    x = (x + _GOLDEN) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def ecmp_path(salt: int, flow_id: int, flowlet_id: int, num_paths: int) -> int:
    """Deterministic path index for (*flow*, *flowlet*) under *salt*.

    The salt (the run seed) decorrelates path assignments across runs;
    the flowlet id re-randomises the path at each flowlet boundary.
    """
    check_int("num_paths", num_paths, minimum=1)
    h = splitmix64(splitmix64(salt & _MASK64) ^ (flow_id & _MASK64))
    h = splitmix64(h ^ (flowlet_id & _MASK64))
    return h % num_paths


class _FlowState:
    """Per-flow fabric memory: last burst time, flowlet count, path."""

    __slots__ = ("last_seen_s", "flowlet_id", "path")

    def __init__(self, last_seen_s: float, path: int) -> None:
        self.last_seen_s = last_seen_s
        self.flowlet_id = 0
        self.path = path


class FlowletEcmpFabric:
    """NLB forwarding policy hashing flows over a fat-tree's paths.

    Parameters
    ----------
    num_racks, servers_per_rack:
        Tree edge shape; server *s* lives in rack
        ``s.server_id // servers_per_rack``.
    num_spines:
        Spine count; the path space is ``num_spines × num_racks``.
    flowlet_gap_s:
        Idle gap after which a flow's next request may re-hash;
        ``None`` pins each flow to its first hashed path forever.
    salt:
        Hash salt (the run seed) for cross-run decorrelation.
    obs:
        Recorder for the ``fabric.*`` counters; ``None`` records
        nothing.
    """

    def __init__(
        self,
        num_racks: int,
        servers_per_rack: int,
        num_spines: int = 2,
        flowlet_gap_s: Optional[float] = 0.05,
        salt: int = 0,
        obs: Optional["Recorder"] = None,
    ) -> None:
        check_int("num_racks", num_racks, minimum=1)
        check_int("servers_per_rack", servers_per_rack, minimum=1)
        check_int("num_spines", num_spines, minimum=1)
        if flowlet_gap_s is not None:
            check_positive("flowlet_gap_s", flowlet_gap_s)
        check_int("salt", salt, minimum=0)
        self.num_racks = num_racks
        self.servers_per_rack = servers_per_rack
        self.num_spines = num_spines
        self.flowlet_gap_s = flowlet_gap_s
        self.salt = salt
        self._counters = obs.counters if obs is not None else None
        self._flows: Dict[int, _FlowState] = {}
        self._rack_rr: List[int] = [0] * num_racks

    @property
    def num_paths(self) -> int:
        """Size of the ECMP path space."""
        return self.num_spines * self.num_racks

    def _inc(self, name: str) -> None:
        if self._counters is not None:
            self._counters.inc(name)

    def path_of(self, flow_id: int) -> Optional[int]:
        """The path flow *flow_id* is currently hashed to (None = unseen)."""
        state = self._flows.get(flow_id)
        return state.path if state is not None else None

    def rack_of_path(self, path: int) -> int:
        """The destination rack of *path* (spine = ``path // num_racks``)."""
        check_int("path", path, minimum=0)
        return path % self.num_racks

    # ------------------------------------------------------------------
    # ForwardingPolicy protocol
    # ------------------------------------------------------------------
    def select(
        self, request: "Request", servers: Sequence["Server"]
    ) -> "Server":
        """Pick the backend for *request* among healthy *servers*.

        Resolution order: flowlet-aware path hash → destination rack →
        round-robin within the rack's healthy members.  When the hashed
        rack has no healthy member the fabric probes subsequent racks in
        deterministic order (a failover re-route, counted separately so
        chaos runs can see re-routing happen).
        """
        flow_id = request.source_id
        now_s = request.arrival_time_s
        state = self._flows.get(flow_id)
        if state is None:
            state = _FlowState(
                now_s, ecmp_path(self.salt, flow_id, 0, self.num_paths)
            )
            self._flows[flow_id] = state
            self._inc("fabric.flows")
            self._inc("fabric.flowlets")
        else:
            gap_s = self.flowlet_gap_s
            if gap_s is not None and now_s - state.last_seen_s > gap_s:
                state.flowlet_id += 1
                self._inc("fabric.flowlets")
                new_path = ecmp_path(
                    self.salt, flow_id, state.flowlet_id, self.num_paths
                )
                if new_path != state.path:
                    self._inc("fabric.path_switches")
                    state.path = new_path
            state.last_seen_s = now_s
        rack_idx = state.path % self.num_racks
        candidates = self._rack_members(rack_idx, servers)
        if not candidates:
            for offset in range(1, self.num_racks):
                probe_idx = (rack_idx + offset) % self.num_racks
                candidates = self._rack_members(probe_idx, servers)
                if candidates:
                    self._inc("fabric.failovers")
                    rack_idx = probe_idx
                    break
        if not candidates:
            # The NLB only calls with a non-empty healthy list, so some
            # rack always matches; this guards a direct caller handing
            # servers from outside the fabric's rack range.
            candidates = list(servers)
        slot = self._rack_rr[rack_idx] % len(candidates)
        self._rack_rr[rack_idx] = slot + 1
        self._inc(f"fabric.forwarded.rack{rack_idx}")
        return candidates[slot]

    def _rack_members(
        self, rack_idx: int, servers: Sequence["Server"]
    ) -> List["Server"]:
        return [
            s
            for s in servers
            if s.server_id // self.servers_per_rack == rack_idx
        ]
