"""Network load balancer (NLB) and forwarding policies.

The NLB is the ingress pipeline of the simulated data center:

``firewall admission → (optional) admission filter → policy → server``

Forwarding policies are pluggable strategy objects; the conventional
ones (round-robin, least-loaded, random) live here, while the paper's
power-driven forwarding (PDF) lives in :mod:`repro.core.pdf` and plugs
into the same interface.  Admission filters model NLB-side traffic
shaping — the Token scheme's power token bucket is one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Protocol, Sequence

import numpy as np

from .._validation import check_int, check_non_negative, check_positive, require
from ..obs import Recorder
from .firewall import RateLimitFirewall
from .request import Request, RequestOutcome

__all__ = [
    "ForwardingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "RandomPolicy",
    "AdmissionFilter",
    "RetryPolicy",
    "NetworkLoadBalancer",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.server import Server

DropSink = Callable[[Request, RequestOutcome, float], None]
#: ``scheduler(delay_s, callback)`` — defer a callback (engine.schedule).
Scheduler = Callable[[float, Callable[[], None]], object]

#: Per-outcome drop-counter names, precomputed so the drop path does no
#: per-request string formatting.  The tails match the
#: ``network.nlb_dropped.`` prefix declared in ``repro.obs.contract``.
_DROP_COUNTER_NAME = {
    outcome: f"network.nlb_dropped.{outcome.name.lower()}"
    for outcome in RequestOutcome
}


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for requests with no healthy backend.

    Attempt *k* (0-based) is retried after
    ``min(base_delay_s * 2**k, max_delay_s)`` seconds; after
    ``max_attempts`` retries the request is dropped as
    ``DROPPED_NO_BACKEND``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    max_delay_s: float = 2.0

    def __post_init__(self) -> None:
        check_int("max_attempts", self.max_attempts, minimum=0)
        check_positive("base_delay_s", self.base_delay_s)
        check_non_negative("max_delay_s", self.max_delay_s)

    def delay_for(self, attempt: int) -> float:
        """Backoff delay before retry number *attempt* (0-based)."""
        return min(self.base_delay_s * (2.0 ** attempt), self.max_delay_s)


class ForwardingPolicy(Protocol):
    """Strategy: choose the backend server for a request."""

    def select(self, request: Request, servers: Sequence[Server]) -> Server:
        """Return the server *request* should be forwarded to."""
        ...


class RoundRobinPolicy:
    """Cycle through the backend list — the classic NLB default."""

    def __init__(self) -> None:
        self._next = 0

    def select(self, request: Request, servers: Sequence[Server]) -> Server:
        """Return the next backend in rotation."""
        require(len(servers) > 0, "no backend servers")
        server = servers[self._next % len(servers)]
        self._next += 1
        return server


class LeastLoadedPolicy:
    """Forward to the backend with the fewest requests in system."""

    def select(self, request: Request, servers: Sequence[Server]) -> Server:
        """Return the backend with the fewest requests in system."""
        require(len(servers) > 0, "no backend servers")
        return min(servers, key=lambda s: (s.in_system, s.server_id))


class RandomPolicy:
    """Uniform random backend choice (stateless, seedable)."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, request: Request, servers: Sequence[Server]) -> Server:
        """Return a uniformly random backend."""
        require(len(servers) > 0, "no backend servers")
        return servers[int(self.rng.integers(0, len(servers)))]


class AdmissionFilter(Protocol):
    """NLB-side shaping hook: may reject a request before forwarding."""

    def admit(self, request: Request, now: float) -> bool:
        """Return ``False`` to drop the request at the balancer."""
        ...


class NetworkLoadBalancer:
    """Ingress pipeline tying firewall, shaping and forwarding together.

    Parameters
    ----------
    servers:
        Backend pool in rack order.
    policy:
        Forwarding strategy (default round-robin).
    firewall:
        Perimeter defence consulted first; ``None`` disables it.
    admission_filter:
        Optional NLB-side shaper consulted after the firewall.
    drop_sink:
        Callback recording requests rejected anywhere in the pipeline.
    now:
        Clock accessor used to timestamp drops.
    obs:
        Observation context counters are recorded into; defaults to a
        private recorder (the simulation facade passes the engine's).
    retry_policy:
        Backoff policy for requests that find no healthy backend
        (crashed or powered-off servers are skipped in rotation).
        Retries need a *scheduler*; without one the request is dropped
        immediately as ``DROPPED_NO_BACKEND``.
    scheduler:
        ``scheduler(delay_s, callback)`` used to defer retries — the
        simulation facade passes ``engine.schedule``.
    """

    def __init__(
        self,
        servers: Sequence[Server],
        policy: Optional[ForwardingPolicy] = None,
        firewall: Optional[RateLimitFirewall] = None,
        admission_filter: Optional[AdmissionFilter] = None,
        drop_sink: Optional[DropSink] = None,
        now: Optional[Callable[[], float]] = None,
        obs: Optional[Recorder] = None,
        retry_policy: Optional[RetryPolicy] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        require(len(servers) > 0, "NLB needs at least one backend")
        self.servers: List[Server] = list(servers)
        self.policy: ForwardingPolicy = policy or RoundRobinPolicy()
        self.firewall = firewall
        self.admission_filter = admission_filter
        self.drop_sink = drop_sink
        self._now = now or (lambda: 0.0)
        self._obs = obs if obs is not None else Recorder()
        self._counters = self._obs.counters
        self.retry_policy = retry_policy
        self._scheduler = scheduler
        self.forwarded = 0
        self.dropped = 0
        self.rerouted = 0

    def _healthy_servers(self) -> List[Server]:
        """Backends currently in rotation (fast path: everyone healthy)."""
        for server in self.servers:
            if not server.healthy:
                return [s for s in self.servers if s.healthy]
        return self.servers

    def dispatch(self, request: Request) -> bool:
        """Run *request* through the ingress pipeline.

        Returns ``True`` when the request reached a server queue.  Every
        rejection is reported to ``drop_sink`` with the pipeline stage
        that caused it; a request deferred for retry returns ``False``
        without a terminal event (it is still in flight).
        """
        now = self._now()
        if self.firewall is not None and not self.firewall.admit(
            request.source_id, now
        ):
            self._drop(request, RequestOutcome.DROPPED_FIREWALL, now)
            return False
        if self.admission_filter is not None and not self.admission_filter.admit(
            request, now
        ):
            self._drop(request, RequestOutcome.DROPPED_TOKEN, now)
            return False
        return self._forward(request, now)

    def reroute(self, request: Request) -> bool:
        """Re-enter an already-admitted request (server-crash shed path).

        Skips the firewall and the admission filter — the request paid
        those tolls on first entry; losing its server is not a reason to
        charge them again.
        """
        self.rerouted += 1
        self._counters.inc("network.nlb_rerouted")
        return self._forward(request, self._now())

    def _forward(self, request: Request, now: float) -> bool:
        """Select a healthy backend and submit; retry/drop when none."""
        healthy = self._healthy_servers()
        if not healthy:
            return self._retry_or_drop(request, now)
        server = self.policy.select(request, healthy)
        if not server.submit(request):
            self._drop(request, RequestOutcome.DROPPED_QUEUE_FULL, now)
            return False
        self.forwarded += 1
        self._counters.inc("network.nlb_forwarded")
        return True

    def _retry_or_drop(self, request: Request, now: float) -> bool:
        """Back off and retry when allowed; otherwise a fault drop."""
        policy = self.retry_policy
        if (
            policy is not None
            and self._scheduler is not None
            and request.retries < policy.max_attempts
        ):
            attempt = request.retries
            request.retries += 1
            self._counters.inc("network.nlb_retries")
            self._scheduler(
                policy.delay_for(attempt),
                lambda r=request: self._forward(r, self._now()),
            )
            return False
        self._drop(request, RequestOutcome.DROPPED_NO_BACKEND, now)
        return False

    def drop_bulk(self, count: int, outcome: RequestOutcome) -> None:
        """Account *count* pre-aggregated drops (fluid-drain path).

        The fluid drain absorbs whole cohorts before they reach
        :meth:`dispatch`; this keeps the balancer's drop tallies and
        the per-outcome counters consistent with what *count*
        individual rejections would have recorded.  Terminal records
        are the drain's job (it writes one aggregate record instead of
        *count* per-request ones).
        """
        self.dropped += count
        self._counters.inc(_DROP_COUNTER_NAME[outcome], count)

    def _drop(self, request: Request, outcome: RequestOutcome, now: float) -> None:
        self.dropped += 1
        self._counters.inc(_DROP_COUNTER_NAME[outcome])
        if self.drop_sink is not None:
            self.drop_sink(request, outcome, now)
        if request.on_terminal is not None:
            request.on_terminal(request, outcome, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkLoadBalancer({len(self.servers)} backends, "
            f"forwarded={self.forwarded}, dropped={self.dropped})"
        )
