"""Request objects and completion records.

A :class:`Request` is a single HTTP query travelling through the
simulated stack: ingress (firewall) → load balancer → server queue →
worker → completion.  The terminal outcome of every request is captured
in a :class:`CompletionRecord`, which is what the metrics layer consumes
— records are flat, slot-typed and cheap, because a trace-driven run
produces millions of them.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from ..workloads.catalog import RequestType, TrafficClass

__all__ = [
    "RequestOutcome",
    "FAULT_OUTCOMES",
    "POLICY_OUTCOMES",
    "Request",
    "CompletionRecord",
]

_request_ids = itertools.count()


class RequestOutcome(enum.Enum):
    """Terminal state of a request."""

    COMPLETED = "completed"
    DROPPED_FIREWALL = "dropped_firewall"
    DROPPED_TOKEN = "dropped_token"
    DROPPED_QUEUE_FULL = "dropped_queue_full"
    TIMED_OUT = "timed_out"
    #: In-service work lost to a server crash (fault-induced).
    FAILED_SERVER = "failed_server"
    #: No healthy backend remained after the NLB's retry budget (fault-induced).
    DROPPED_NO_BACKEND = "dropped_no_backend"


#: Outcomes caused by injected infrastructure faults rather than policy
#: decisions — the metrics layer attributes these separately so that
#: availability curves under chaos scenarios stay honest.
FAULT_OUTCOMES = frozenset(
    {RequestOutcome.FAILED_SERVER, RequestOutcome.DROPPED_NO_BACKEND}
)

#: Outcomes the *scheme* chose: firewall verdicts, token refusals,
#: queue admission control, SLA timeouts.  Together with
#: :data:`FAULT_OUTCOMES` this partitions every non-completed outcome —
#: the REP012 contract rule statically rejects any new enum member that
#: joins neither set, so drop attribution stays total by construction.
POLICY_OUTCOMES = frozenset(
    {
        RequestOutcome.DROPPED_FIREWALL,
        RequestOutcome.DROPPED_TOKEN,
        RequestOutcome.DROPPED_QUEUE_FULL,
        RequestOutcome.TIMED_OUT,
    }
)


class Request:
    """One in-flight HTTP request.

    Attributes
    ----------
    rtype:
        Catalog profile of the requested service (determines service
        demand and power).
    source_id:
        Identity of the sending agent — the key the firewall rate-limits
        on.
    traffic_class:
        Whether a legitimate user or an attacker generated the request.
    arrival_time_s:
        Simulation time at which the request hit the data-center ingress.
    """

    __slots__ = (
        "request_id",
        "rtype",
        "source_id",
        "traffic_class",
        "arrival_time_s",
        "start_service_time_s",
        "remaining_work",
        "server_id",
        "retries",
        "on_terminal",
    )

    def __init__(
        self,
        rtype: RequestType,
        source_id: int,
        traffic_class: TrafficClass,
        arrival_time_s: float,
        request_id: Optional[int] = None,
    ) -> None:
        # Generators pass an engine-scoped serial so that same-seed runs
        # number requests identically; the process-global fallback only
        # serves ad-hoc construction (unit tests, examples).
        self.request_id = (
            request_id if request_id is not None else next(_request_ids)
        )
        self.rtype = rtype
        self.source_id = source_id
        self.traffic_class = traffic_class
        self.arrival_time_s = arrival_time_s
        # Set when a worker picks the request up:
        self.start_service_time_s: Optional[float] = None
        # Work is expressed in "seconds of service at f_max"; the server
        # drains it at its current speedup so DVFS changes mid-service
        # stretch the in-flight requests correctly.
        self.remaining_work: float = 0.0
        self.server_id: Optional[int] = None
        # NLB re-dispatch attempts consumed (crash re-route path).
        self.retries: int = 0
        # Optional callback fired once at the request's terminal event
        # (completion or any drop).  Closed-loop clients use it to learn
        # when to issue their next request.
        self.on_terminal = None

    @property
    def url(self) -> str:
        """URL of the requested service — the NLB's routing key."""
        return self.rtype.url

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(#{self.request_id}, {self.rtype.name}, "
            f"{self.traffic_class.value}, t={self.arrival_time_s:.3f})"
        )


class CompletionRecord:
    """Flat terminal record of one request, consumed by the metrics layer.

    A record normally stands for exactly one request (``weight == 1``).
    The fluid execution mode additionally emits *aggregate* records
    (:meth:`aggregate`) standing for a whole analytically integrated
    cohort — same shape, ``weight == n``, no materialised request id.
    Metrics that count requests sum weights; latency statistics are
    untouched because aggregate records only ever describe drops.
    """

    __slots__ = (
        "request_id",
        "type_name",
        "traffic_class",
        "outcome",
        "arrival_time_s",
        "finish_time_s",
        "server_id",
        "weight",
    )

    def __init__(
        self,
        request: Request,
        outcome: RequestOutcome,
        finish_time_s: float,
    ) -> None:
        self.request_id = request.request_id
        self.type_name = request.rtype.name
        self.traffic_class = request.traffic_class
        self.outcome = outcome
        self.arrival_time_s = request.arrival_time_s
        self.finish_time_s = finish_time_s
        self.server_id = request.server_id
        self.weight = 1

    @classmethod
    def aggregate(
        cls,
        count: int,
        type_name: str,
        traffic_class: TrafficClass,
        outcome: RequestOutcome,
        time_s: float,
    ) -> "CompletionRecord":
        """Record standing for *count* identical requests at once.

        Aggregate records carry ``request_id = -1``: the requests they
        stand for were absorbed by a fluid segment and their per-request
        ids were never materialised (the lazy-id contract — ids exist
        only where outcomes diverge, and inside an aggregate they
        provably do not).
        """
        if count < 1:
            raise ValueError(f"aggregate count must be >= 1, got {count}")
        record = cls.__new__(cls)
        record.request_id = -1
        record.type_name = type_name
        record.traffic_class = traffic_class
        record.outcome = outcome
        record.arrival_time_s = time_s
        record.finish_time_s = time_s
        record.server_id = None
        record.weight = int(count)
        return record

    @property
    def response_time(self) -> float:
        """End-to-end sojourn time (seconds); meaningful when completed."""
        return self.finish_time_s - self.arrival_time_s

    @property
    def completed(self) -> bool:
        """True when the request was served to completion."""
        return self.outcome is RequestOutcome.COMPLETED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompletionRecord(#{self.request_id}, {self.type_name}, "
            f"{self.outcome.value}, rt={self.response_time * 1e3:.1f}ms)"
        )
