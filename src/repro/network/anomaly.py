"""Aggregate anomaly detection — and why it cannot stop DOPE.

The paper argues that "mainstream network protection mechanisms are
incapable of handling DOPE due to their primary dependency on
rate-limiting techniques".  A fair test of that claim needs a smarter
detector than DDoS-deflate: this module provides an EWMA z-score
detector over the *aggregate* request rate, the standard statistical
anomaly monitor.

The detector demonstrates the attribution gap precisely:

* the **aggregate** alarm fires reliably when a DOPE flood starts (the
  total rate steps up far beyond its learned variance), but
* the **offender query** — which sources individually exceed a rate
  threshold — returns nothing, because every DOPE agent sits at a few
  requests per second.

Detection without attribution leaves only indiscriminate responses
(rate-limit everyone — the Token scheme's collateral), which is exactly
the paper's point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from .._validation import check_positive
from ..sim.engine import EventEngine
from ..sim.events import PRIORITY_MONITOR

__all__ = [
    "AnomalyAlarm",
    "AnomalyStats",
    "AggregateAnomalyDetector",
]


@dataclass
class AnomalyAlarm:
    """One aggregate-rate alarm."""

    time_s: float
    rate_rps: float
    zscore: float
    offenders: List[int]


@dataclass
class AnomalyStats:
    """Detector history."""

    windows: int = 0
    alarms: List[AnomalyAlarm] = field(default_factory=list)

    @property
    def alarm_count(self) -> int:
        """Number of alarms raised so far."""
        return len(self.alarms)


class AggregateAnomalyDetector:
    """EWMA z-score monitor over the aggregate request rate.

    Parameters
    ----------
    window_s:
        Counting window (one rate sample per window).
    alpha:
        EWMA smoothing factor for mean and variance.
    z_threshold:
        Alarm when ``(rate − mean) / std`` exceeds this.
    warmup_windows:
        Windows used purely for learning before alarms may fire.
    offender_rps:
        Per-source rate above which a source is *attributable* — the
        same kind of threshold a rate-limiting mitigation would need.
    """

    def __init__(
        self,
        window_s: float = 5.0,
        alpha: float = 0.2,
        z_threshold: float = 4.0,
        warmup_windows: int = 6,
        offender_rps: float = 50.0,
    ) -> None:
        check_positive("window_s", window_s)
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0,1), got {alpha}")
        check_positive("z_threshold", z_threshold)
        check_positive("offender_rps", offender_rps)
        self.window_s = float(window_s)
        self.alpha = float(alpha)
        self.z_threshold = float(z_threshold)
        self.warmup_windows = int(warmup_windows)
        self.offender_rps = float(offender_rps)

        self._counts: Dict[int, int] = {}
        self._total = 0
        self._mean: Optional[float] = None
        self._var = 0.0
        self.stats = AnomalyStats()
        self._stop: Optional[Callable[[], None]] = None
        self._now: Callable[[], float] = lambda: 0.0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, engine: EventEngine) -> None:
        """Start windowed evaluation on *engine*."""
        if self._stop is not None:
            raise RuntimeError("detector already attached")
        self._now = lambda: engine.now
        self._stop = engine.every(
            self.window_s, self._evaluate, priority=PRIORITY_MONITOR
        )

    def detach(self) -> None:
        """Stop evaluating."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    def observe(self, source_id: int) -> None:
        """Count one request (call from the ingress path)."""
        self._counts[source_id] = self._counts.get(source_id, 0) + 1
        self._total += 1

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        rate = self._total / self.window_s
        self.stats.windows += 1
        in_warmup = self.stats.windows <= self.warmup_windows
        if self._mean is None:
            self._mean = rate
        else:
            z = self._zscore(rate)
            if not in_warmup and z > self.z_threshold:
                self.stats.alarms.append(
                    AnomalyAlarm(
                        time_s=self._now(),
                        rate_rps=rate,
                        zscore=z,
                        offenders=self.offenders(),
                    )
                )
                # An alarmed window is excluded from the model update:
                # learning the attack as the new normal would silence
                # the detector exactly when it matters.
                self._reset_window()
                return
            # EWMA update (mean first, then variance of the residual).
            residual = rate - self._mean
            self._mean += self.alpha * residual
            self._var = (1 - self.alpha) * (self._var + self.alpha * residual**2)
        self._reset_window()

    def _zscore(self, rate: float) -> float:
        std = math.sqrt(self._var)
        if std < 1e-9:
            # Degenerate variance: any deviation beyond 10% is anomalous.
            return float("inf") if abs(rate - self._mean) > 0.1 * max(
                self._mean, 1.0
            ) else 0.0
        return (rate - self._mean) / std

    def offenders(self) -> List[int]:
        """Sources individually above the attribution threshold."""
        limit = self.offender_rps * self.window_s
        return sorted(s for s, c in self._counts.items() if c > limit)

    def _reset_window(self) -> None:
        self._counts.clear()
        self._total = 0

    @property
    def learned_rate_rps(self) -> Optional[float]:
        """The EWMA baseline rate (None before the first window)."""
        return self._mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mean = "?" if self._mean is None else f"{self._mean:.1f}"
        return (
            f"AggregateAnomalyDetector(baseline={mean}rps, "
            f"alarms={self.stats.alarm_count})"
        )
