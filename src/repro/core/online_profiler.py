"""Online URL power profiling.

The paper builds its suspect list from *offline* analysis — practical
when the service catalog is known, but new endpoints appear and real
deployments cannot re-run a characterisation campaign for each.  This
extension learns the per-URL power profile at runtime from nothing an
operator doesn't already have: per-server power telemetry plus the set
of requests each server is executing.

Each sampling tick of each server yields one linear observation:
``dynamic_power = Σ_url count(url) · w(url)``, where ``count`` is the
number of in-service requests per URL and ``w`` the unknown per-worker
power of that URL.  The profiler accumulates the normal equations
online (``A += c·cᵀ``, ``b += P_dyn·c``) and solves the least-squares
system when asked, which disentangles co-located heavy and light
requests — naive equal-split attribution would credit a light request
with its heavy neighbour's watts.  From the solved weights it
extrapolates a full-load power estimate per URL (idle + w × workers)
and emits a :class:`~repro.core.suspect_list.SuspectList` via the
measurement path, so PDF can be (re)configured live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from .._validation import check_int, check_positive
from ..cluster.rack import Rack
from ..sim.engine import EventEngine
from ..sim.events import PRIORITY_MONITOR
from .suspect_list import SuspectList

__all__ = [
    "UrlObservation",
    "OnlineUrlPowerProfiler",
]


@dataclass
class UrlObservation:
    """Per-URL sample accounting (the regression holds the power)."""

    samples: int = 0


class OnlineUrlPowerProfiler:
    """Learn per-URL power from live telemetry.

    Parameters
    ----------
    engine, rack:
        Simulation wiring; the profiler reads each server's power and
        in-service request set.
    interval_s:
        Sampling period.
    min_samples:
        Minimum per-URL samples before the URL is considered profiled.
    """

    def __init__(
        self,
        engine: EventEngine,
        rack: Rack,
        interval_s: float = 1.0,
        min_samples: int = 20,
    ) -> None:
        check_positive("interval_s", interval_s)
        check_int("min_samples", min_samples, minimum=1)
        self.engine = engine
        self.rack = rack
        self.interval_s = float(interval_s)
        self.min_samples = min_samples
        self.observations: Dict[str, UrlObservation] = {}
        # Online normal equations for dyn_power = counts · weights.
        self._url_index: Dict[str, int] = {}
        self._ata = np.zeros((0, 0))
        self._atb = np.zeros(0)
        self._stop: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin sampling."""
        if self._stop is not None:
            raise RuntimeError("profiler already started")
        self._stop = self.engine.every(
            self.interval_s, self.sample, priority=PRIORITY_MONITOR
        )

    def stop(self) -> None:
        """Stop sampling (observations are kept)."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def _index_of(self, url: str) -> int:
        idx = self._url_index.get(url)
        if idx is None:
            idx = len(self._url_index)
            self._url_index[url] = idx
            # Grow the normal equations by one dimension.
            k = idx + 1
            ata = np.zeros((k, k))
            ata[: k - 1, : k - 1] = self._ata
            self._ata = ata
            atb = np.zeros(k)
            atb[: k - 1] = self._atb
            self._atb = atb
        return idx

    def sample(self) -> None:
        """One telemetry tick: record an observation per busy server."""
        for server in self.rack.servers:
            active = list(server._active.values())
            if not active or not server.powered_on:
                continue
            dynamic = max(
                0.0,
                server.current_power()
                - server.power_model.idle_power(server.freq_ratio),
            )
            seen = {}
            for entry in active:
                url = entry.request.rtype.url
                idx = self._index_of(url)
                seen[idx] = seen.get(idx, 0) + 1
                obs = self.observations.setdefault(url, UrlObservation())
                obs.samples += 1
            k = len(self._url_index)
            c = np.zeros(k)
            for idx, count in seen.items():
                c[idx] = count
            self._ata += np.outer(c, c)
            self._atb += dynamic * c

    def _solved_weights(self) -> Dict[str, float]:
        """Least-squares per-worker dynamic power per URL."""
        if not self._url_index:
            return {}
        weights, *_ = np.linalg.lstsq(self._ata, self._atb, rcond=None)
        weights = np.clip(weights, 0.0, None)
        return {url: float(weights[idx]) for url, idx in self._url_index.items()}

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def profiled_urls(self) -> List[str]:
        """URLs with at least ``min_samples`` observations."""
        return sorted(
            url
            for url, obs in self.observations.items()
            if obs.samples >= self.min_samples
        )

    def full_load_estimate_w(self, url: str) -> float:
        """Extrapolated power of a server fully loaded with *url*."""
        obs = self.observations.get(url)
        if obs is None or obs.samples < self.min_samples:
            raise KeyError(f"url {url!r} not sufficiently profiled")
        model = self.rack.power_model
        worker_w = self._solved_weights()[url]
        return model.idle_power(1.0) + worker_w * model.num_workers

    def to_suspect_list(self, threshold_fraction: float = 0.70) -> SuspectList:
        """Emit a suspect list from the profiled URLs.

        Raises ``ValueError`` when nothing is sufficiently profiled —
        an unprofiled system must not silently classify everything
        innocent.
        """
        urls = self.profiled_urls()
        if not urls:
            raise ValueError(
                f"no URL has reached {self.min_samples} samples yet"
            )
        samples = [(url, self.full_load_estimate_w(url)) for url in urls]
        return SuspectList.from_measurements(
            samples,
            nameplate_w=self.rack.power_model.nameplate_w,
            threshold_fraction=threshold_fraction,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineUrlPowerProfiler({len(self.profiled_urls())} profiled "
            f"of {len(self.observations)} seen)"
        )
