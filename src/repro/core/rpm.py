"""RPM — request-aware power management (Anti-DOPE step 2).

RPM is the server-side control loop.  Every slot it plays the roles the
paper assigns to the *server power monitor* and *server health
checker*: read the instantaneous rack power, compare against the
supply, and when the budget is violated:

1. discharge the battery as a **transition medium** covering the
   deficit for the slot in which the V/F configuration is being
   reconfigured (the "booting delay of DVFS" in Section 6.4) — not as
   a bulk peak-shaving store;
2. ask the :class:`~repro.core.dpm.DPMPlanner` for the differentiated
   throttle configuration and actuate it on the suspect/innocent pools;
3. once the configuration is in place and power is back under budget,
   recharge the battery immediately (Fig. 18's saw-tooth dark line).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from .._validation import check_fraction, check_positive
from ..cluster.server import Server
from ..power.battery import Battery
from ..power.budget import PowerBudget
from .dpm import DPMPlanner, ThrottlePlan

__all__ = [
    "RPMDecision",
    "RPMStats",
    "RequestAwarePowerManager",
]


@dataclass
class RPMDecision:
    """Per-slot control record (drives the Fig. 15a/18 benches)."""

    time_s: float
    power_w: float
    deficit_w: float
    battery_w: float
    plan: ThrottlePlan
    reconfigured: bool


@dataclass
class RPMStats:
    """Aggregate controller statistics."""

    slots: int = 0
    violations: int = 0
    reconfigurations: int = 0
    infeasible_slots: int = 0
    degraded_slots: int = 0
    decisions: List[RPMDecision] = field(default_factory=list)


class RequestAwarePowerManager:
    """The Anti-DOPE runtime controller.

    Parameters
    ----------
    suspect_pool, innocent_pool:
        The PDF server partition (suspect pool is throttled first).
    budget:
        The enforced power budget.
    battery:
        Optional transition-medium battery; ``None`` disables the
        ride-through (the ablation arm).
    planner:
        DPM planner; defaults to one sized to the pools' ladder.
    slot_s:
        Control-slot length in seconds.
    recharge_headroom_fraction:
        Fraction of spare headroom offered to the battery per slot.
    power_reader:
        Optional override for the power observation used by control —
        the Anti-DOPE scheme passes its (possibly sensor-degraded)
        ``current_power`` so RPM plans against what the meter reports,
        not omniscient truth.  ``None`` keeps the exact pool sum.
    """

    def __init__(
        self,
        suspect_pool: Sequence[Server],
        innocent_pool: Sequence[Server],
        budget: PowerBudget,
        battery: Optional[Battery] = None,
        planner: Optional[DPMPlanner] = None,
        slot_s: float = 1.0,
        recharge_headroom_fraction: float = 0.5,
        power_reader: Optional[Callable[[], float]] = None,
    ) -> None:
        if not suspect_pool or not innocent_pool:
            raise ValueError("both pools must be non-empty")
        check_positive("slot_s", slot_s)
        check_fraction("recharge_headroom_fraction", recharge_headroom_fraction)
        self.suspect_pool = list(suspect_pool)
        self.innocent_pool = list(innocent_pool)
        self.budget = budget
        self.battery = battery
        ladder = self.suspect_pool[0].ladder
        self.planner = planner or DPMPlanner(ladder.max_level)
        self.slot_s = float(slot_s)
        self.recharge_headroom_fraction = recharge_headroom_fraction
        self.power_reader = power_reader
        self.stats = RPMStats()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _pool_power(self, pool: Sequence[Server], level: int) -> float:
        ladder = pool[0].ladder
        ratio = ladder.ratio(ladder.clamp(level))
        total = 0.0
        for server in pool:
            if not server.healthy:
                # Crashed/powered-off servers draw nothing and will not
                # respond to DVFS — predicting them at idle would bias
                # the planner toward needless extra throttling.
                continue
            types = (e.request.rtype for e in server._active.values())
            total += server.power_model.power(types, ratio)
        return total

    def predict(self, suspect_level: int, innocent_level: int) -> float:
        """Rack power if the pools moved to the given levels now."""
        return self._pool_power(self.suspect_pool, suspect_level) + self._pool_power(
            self.innocent_pool, innocent_level
        )

    def current_power(self) -> float:
        """Instantaneous power of both pools."""
        return sum(s.current_power() for s in self.suspect_pool) + sum(
            s.current_power() for s in self.innocent_pool
        )

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def step(self, now: float) -> RPMDecision:
        """One control slot; returns the decision record.

        When servers have crashed out of a pool the slot is *degraded*:
        planning proceeds over the healthy survivors (a fully-dead pool
        contributes zero power and its level defaults to the ladder
        top), and the slot is counted in ``stats.degraded_slots``.
        """
        if self.power_reader is not None:
            power_w = self.power_reader()
        else:
            power_w = self.current_power()
        deficit = self.budget.deficit(power_w)
        self.stats.slots += 1
        if deficit > 0:
            self.stats.violations += 1

        suspect_alive = [s for s in self.suspect_pool if s.healthy]
        innocent_alive = [s for s in self.innocent_pool if s.healthy]
        if len(suspect_alive) < len(self.suspect_pool) or len(
            innocent_alive
        ) < len(self.innocent_pool):
            self.stats.degraded_slots += 1

        ladder = self.suspect_pool[0].ladder
        plan = self.planner.plan(
            self.budget.supply_w,
            self.predict,
            current_suspect_level=min(
                (s.level for s in suspect_alive), default=ladder.max_level
            ),
            current_innocent_level=min(
                (s.level for s in innocent_alive), default=ladder.max_level
            ),
        )
        if not plan.feasible:
            self.stats.infeasible_slots += 1

        reconfigured = self._apply(plan)
        battery_w = 0.0
        if self.battery is not None:
            if deficit > 0 and reconfigured:
                # Transition medium: carry the deficit across the slot in
                # which the new V/F settings take effect.
                battery_w = self.battery.discharge(deficit, self.slot_s)
            elif deficit <= 0:
                headroom = self.budget.headroom(power_w)
                self.battery.charge(
                    headroom * self.recharge_headroom_fraction, self.slot_s
                )
            else:
                self.battery.idle()
        if reconfigured:
            self.stats.reconfigurations += 1

        decision = RPMDecision(
            time_s=now,
            power_w=power_w,
            deficit_w=deficit,
            battery_w=battery_w,
            plan=plan,
            reconfigured=reconfigured,
        )
        self.stats.decisions.append(decision)
        return decision

    def _apply(self, plan: ThrottlePlan) -> bool:
        """Actuate the plan on healthy servers; True when any changed."""
        changed = False
        for server in self.suspect_pool:
            if server.healthy and server.level != plan.suspect_level:
                server.set_level(plan.suspect_level)
                changed = True
        for server in self.innocent_pool:
            if server.healthy and server.level != plan.innocent_level:
                server.set_level(plan.innocent_level)
                changed = True
        return changed
