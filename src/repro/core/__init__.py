"""Anti-DOPE — the paper's contribution: suspect list, PDF, DPM, RPM."""

from .anti_dope import AntiDopeScheme
from .online_profiler import OnlineUrlPowerProfiler
from .oracle import GroundTruthFilter, OracleScheme
from .dpm import DPMPlanner, ThrottlePlan
from .pdf import PDFPolicy, split_pools
from .rpm import RequestAwarePowerManager, RPMDecision, RPMStats
from .suspect_list import SuspectList, UrlPowerProfile

__all__ = [
    "SuspectList",
    "UrlPowerProfile",
    "PDFPolicy",
    "split_pools",
    "DPMPlanner",
    "ThrottlePlan",
    "RequestAwarePowerManager",
    "RPMDecision",
    "RPMStats",
    "AntiDopeScheme",
    "OnlineUrlPowerProfiler",
    "OracleScheme",
    "GroundTruthFilter",
]
