"""Oracle defence: the perfect-knowledge upper bound.

Anti-DOPE deliberately does *not* try to distinguish malicious requests
from legitimate ones ("KISS principle", Section 5.4) — it isolates by
power profile and accepts the collateral on legitimate heavy requests.
The natural research question is how much that simplicity costs, so
this module provides the cheating upper bound: a defence that reads the
simulator's ground-truth traffic class and drops attack requests at the
load balancer, with rack-level capping behind it for any residual
peaks.

No real deployment can implement this (the anonymity of the Internet is
the paper's premise); it exists to *bound* the achievable, so the
oracle-gap bench can report how close Anti-DOPE's KISS design gets.
"""

from __future__ import annotations

from typing import Optional

from ..network.request import Request
from ..power.capping import CappingScheme
from ..workloads.catalog import TrafficClass

__all__ = [
    "GroundTruthFilter",
    "OracleScheme",
]


class GroundTruthFilter:
    """NLB admission filter that drops ground-truth attack traffic."""

    def __init__(self) -> None:
        self.dropped_attack = 0
        self.admitted = 0

    def admit(self, request: Request, now: float) -> bool:
        """Reject exactly the requests tagged as attack traffic."""
        if request.traffic_class is TrafficClass.ATTACK:
            self.dropped_attack += 1
            return False
        self.admitted += 1
        return True


class OracleScheme(CappingScheme):
    """Perfect attack knowledge + rack capping (the upper bound).

    Extends :class:`~repro.power.capping.CappingScheme` so any power
    peak the (purely legitimate) residual load produces is still
    enforced — the oracle removes the attack, not the laws of physics.
    """

    name = "oracle"

    def __init__(self, hysteresis: float = 0.02) -> None:
        super().__init__(hysteresis=hysteresis)
        self.filter = GroundTruthFilter()

    def admission_filter(self) -> Optional[GroundTruthFilter]:
        """The ground-truth attack filter (installed on the NLB)."""
        return self.filter
