"""Suspect list: offline power profiling of service endpoints.

The cornerstone of Anti-DOPE (Section 5.2): for an online
data-intensive application, requests for the same URL need similar
resources and draw similar power, so a per-URL power profile built
*offline* classifies incoming traffic without inspecting payloads or
sources.  A URL whose power demand exceeds a threshold is *suspect* —
not necessarily malicious, but capable of being weaponised — and PDF
forwards it to the isolated suspect pool.

Two construction paths are provided:

* :meth:`SuspectList.from_model` — closed-form profiling from the
  server power model (what the paper's offline characterisation
  produces);
* :meth:`SuspectList.from_measurements` — empirical profiling from
  observed ``(url, power)`` samples, for deployments where the model
  is unknown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from .._validation import check_fraction, require
from ..cluster.power_model import ServerPowerModel
from ..workloads.catalog import RequestType

__all__ = [
    "UrlPowerProfile",
    "SuspectList",
]


@dataclass(frozen=True)
class UrlPowerProfile:
    """Offline profile of one endpoint."""

    url: str
    full_load_power_w: float
    energy_per_request_j: float
    suspect: bool


class SuspectList:
    """URL → suspect classification with the backing profiles.

    Parameters
    ----------
    profiles:
        Per-URL profiles; the classification consulted by PDF.
    threshold_w:
        The full-load power threshold that split suspect from innocent
        (kept for reporting and ablation sweeps).
    """

    def __init__(
        self, profiles: Mapping[str, UrlPowerProfile], threshold_w: float
    ) -> None:
        require(len(profiles) > 0, "SuspectList needs at least one profile")
        self._profiles: Dict[str, UrlPowerProfile] = dict(profiles)
        self.threshold_w = float(threshold_w)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        types: Sequence[RequestType],
        power_model: ServerPowerModel,
        threshold_fraction: float = 0.70,
    ) -> "SuspectList":
        """Profile *types* analytically against *power_model*.

        A type is suspect when the power of a server fully loaded with
        it at nominal frequency reaches ``threshold_fraction`` of
        nameplate.  With the paper's catalog and the default 0.70,
        Colla-Filt, K-means and Word-Count are suspect while Text-Cont
        and volume floods are innocent — matching the attack types the
        paper observes raising power at low rates (Fig. 4a).
        """
        check_fraction("threshold_fraction", threshold_fraction, inclusive=False)
        require(len(types) > 0, "need at least one request type")
        threshold_w = power_model.nameplate_w * threshold_fraction
        profiles = {}
        for rtype in types:
            full = power_model.full_load_power(rtype, 1.0)
            profiles[rtype.url] = UrlPowerProfile(
                url=rtype.url,
                full_load_power_w=full,
                energy_per_request_j=power_model.energy_per_request(rtype, 1.0),
                suspect=full >= threshold_w,
            )
        return cls(profiles, threshold_w)

    @classmethod
    def from_measurements(
        cls,
        samples: Iterable[Tuple[str, float]],
        nameplate_w: float,
        threshold_fraction: float = 0.70,
    ) -> "SuspectList":
        """Profile empirically from ``(url, observed_power_w)`` samples.

        The mean observed power per URL stands in for the full-load
        profile; energy per request is unknown and reported as NaN.
        """
        check_fraction("threshold_fraction", threshold_fraction, inclusive=False)
        by_url: Dict[str, List[float]] = {}
        for url, power in samples:
            by_url.setdefault(url, []).append(float(power))
        require(len(by_url) > 0, "no measurement samples provided")
        threshold_w = nameplate_w * threshold_fraction
        profiles = {}
        for url, powers in by_url.items():
            mean_power_w = float(np.mean(powers))
            profiles[url] = UrlPowerProfile(
                url=url,
                full_load_power_w=mean_power_w,
                energy_per_request_j=float("nan"),
                suspect=mean_power_w >= threshold_w,
            )
        return cls(profiles, threshold_w)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def is_suspect(self, url: str) -> bool:
        """Classify *url*; unknown URLs default to innocent (KISS rule).

        Defaulting unknown endpoints to innocent keeps false positives
        off new legitimate services; a deployment wanting the opposite
        bias can pre-register a catch-all profile.
        """
        profile = self._profiles.get(url)
        return profile.suspect if profile is not None else False

    def profile(self, url: str) -> UrlPowerProfile:
        """The backing profile for *url* (KeyError when unprofiled)."""
        try:
            return self._profiles[url]
        except KeyError:
            raise KeyError(
                f"url {url!r} not profiled; known: {sorted(self._profiles)}"
            ) from None

    @property
    def suspect_urls(self) -> List[str]:
        """All URLs classified suspect, sorted."""
        return sorted(u for u, p in self._profiles.items() if p.suspect)

    @property
    def innocent_urls(self) -> List[str]:
        """All URLs classified innocent, sorted."""
        return sorted(u for u, p in self._profiles.items() if not p.suspect)

    def __len__(self) -> int:
        return len(self._profiles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SuspectList(threshold={self.threshold_w:.0f}W, "
            f"suspect={self.suspect_urls})"
        )
