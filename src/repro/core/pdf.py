"""PDF — power-driven forwarding (Anti-DOPE step 1, Section 5.1).

PDF lives on the network load balancer.  For every incoming request the
HTTP-process module classifies the access URL against the offline
suspect list, and the URL-based forwarding module redirects suspects to
a dedicated *suspect pool* of backend servers while innocent requests
keep the full remaining pool.  The isolation is what lets step 2 (RPM)
throttle power attacks without collateral damage: when DVFS has to
bite, it bites servers that mostly hold high-power (probably hostile)
requests.

:class:`PDFPolicy` implements the NLB :class:`ForwardingPolicy`
interface, so Anti-DOPE drops into the ingress pipeline exactly where a
round-robin policy would sit — "minute system modification".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .._validation import check_int, require
from ..cluster.server import Server
from ..network.load_balancer import RoundRobinPolicy
from ..network.request import Request
from ..obs import Recorder
from .suspect_list import SuspectList

__all__ = [
    "split_pools",
    "PDFPolicy",
]


def split_pools(
    servers: Sequence[Server], suspect_pool_size: int
) -> tuple:
    """Partition *servers* into (innocent_pool, suspect_pool).

    The *last* ``suspect_pool_size`` servers in rack order form the
    suspect pool; a stable, position-based carve-out so that the power
    manager and the forwarder always agree on which nodes are isolated.
    """
    check_int("suspect_pool_size", suspect_pool_size, minimum=1)
    require(
        suspect_pool_size < len(servers),
        f"suspect pool ({suspect_pool_size}) must leave at least one "
        f"innocent server out of {len(servers)}",
    )
    cut = len(servers) - suspect_pool_size
    return list(servers[:cut]), list(servers[cut:])


class PDFPolicy:
    """Suspect-aware forwarding policy.

    Parameters
    ----------
    suspect_list:
        Offline URL classification.
    servers:
        Full backend pool in rack order.
    suspect_pool_size:
        Number of servers isolated for suspect traffic (paper's mini
        rack isolates 1 of 4 by default).
    obs:
        Observation context recording per-decision counters; defaults
        to a private recorder (Anti-DOPE passes the engine's at bind).
    """

    def __init__(
        self,
        suspect_list: SuspectList,
        servers: Sequence[Server],
        suspect_pool_size: int = 1,
        obs: Optional[Recorder] = None,
    ) -> None:
        self.suspect_list = suspect_list
        self.innocent_pool, self.suspect_pool = split_pools(
            servers, suspect_pool_size
        )
        self._innocent_rr = RoundRobinPolicy()
        self._suspect_rr = RoundRobinPolicy()
        self._obs = obs if obs is not None else Recorder()
        self.suspect_forwarded = 0
        self.innocent_forwarded = 0

    def select(self, request: Request, servers: Sequence[Server]) -> Server:
        """Route by suspect-list classification of the request URL.

        The *servers* argument (the NLB's full pool) is ignored in
        favour of the pools fixed at construction: the carve-out must
        stay consistent with the power manager's view.  Crashed servers
        are skipped; when a pool is entirely dead the request fails over
        to the other pool's survivors (isolation is worth less than
        availability), and the NLB's retry path handles a fully-dead
        rack before this policy ever sees the request.
        """
        if self.suspect_list.is_suspect(request.url):
            pool = self._alive(self.suspect_pool, self.innocent_pool)
            self.suspect_forwarded += 1
            self._obs.counters.inc("network.pdf_suspect_forwarded")
            return self._suspect_rr.select(request, pool)
        pool = self._alive(self.innocent_pool, self.suspect_pool)
        self.innocent_forwarded += 1
        self._obs.counters.inc("network.pdf_innocent_forwarded")
        return self._innocent_rr.select(request, pool)

    def _alive(
        self, preferred: Sequence[Server], fallback: Sequence[Server]
    ) -> Sequence[Server]:
        """Healthy members of *preferred*, else failover to *fallback*."""
        if all(s.healthy for s in preferred):
            return preferred
        alive = [s for s in preferred if s.healthy]
        if alive:
            return alive
        self._obs.counters.inc("network.pdf_failover_forwarded")
        return [s for s in fallback if s.healthy]

    @property
    def suspect_server_ids(self) -> List[int]:
        """Rack ids of the isolated pool (the DPM throttle targets)."""
        return [s.server_id for s in self.suspect_pool]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PDFPolicy(suspect_pool={self.suspect_server_ids}, "
            f"suspect_fwd={self.suspect_forwarded}, "
            f"innocent_fwd={self.innocent_forwarded})"
        )
