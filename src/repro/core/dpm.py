"""DPM — differentiated power management planner (Algorithm 1).

Given a power budget, the current battery cover and a prediction
function, the planner chooses the throttling configuration
``TL(p, q)`` = (suspect-pool level *p*, innocent-pool level *q*) that
satisfies the budget with the least performance loss, searching in the
strict priority order the paper prescribes:

1. keep innocent servers at nominal and throttle only the suspect pool
   (highest suspect level that fits wins);
2. only if the suspect pool pinned at its deepest throttle still
   violates the budget, start lowering the innocent pool too;
3. if even everything-at-minimum violates (idle-floor dominated), fall
   back to the deepest configuration — the physical best effort.

The planner is a pure function of ``(budget, predict)`` so it can be
unit-tested exhaustively; actuation lives in
:class:`repro.core.rpm.RequestAwarePowerManager`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .._validation import check_fraction, check_int, check_non_negative

__all__ = [
    "ThrottlePlan",
    "DPMPlanner",
]

#: predict(suspect_level, innocent_level) -> rack watts at that config.
PowerPredictor = Callable[[int, int], float]


@dataclass(frozen=True)
class ThrottlePlan:
    """One DPM decision: per-pool uniform V/F levels plus diagnostics."""

    suspect_level: int
    innocent_level: int
    predicted_power_w: float
    feasible: bool

    def degrades_innocent(self, max_level: int) -> bool:
        """True when the plan had to touch the innocent pool."""
        return self.innocent_level < max_level


class DPMPlanner:
    """Search for the least-damage throttle configuration.

    Parameters
    ----------
    max_level:
        Top of the DVFS ladder (index of nominal frequency).
    hysteresis:
        Raise-guard band as a fraction of the cap: a pool level is only
        *raised* when the predicted power stays below
        ``cap × (1 − hysteresis)``, preventing level chatter when the
        load sits exactly at the budget.
    """

    def __init__(self, max_level: int, hysteresis: float = 0.02) -> None:
        check_int("max_level", max_level, minimum=0)
        check_fraction("hysteresis", hysteresis)
        self.max_level = max_level
        self.hysteresis = hysteresis

    def plan(
        self,
        cap_w: float,
        predict: PowerPredictor,
        current_suspect_level: int,
        current_innocent_level: int,
    ) -> ThrottlePlan:
        """Choose ``TL(p, q)`` for the coming slot.

        *cap_w* is the effective budget for the slot (supply plus any
        battery cover the caller has arranged).  *predict* must be
        monotone non-decreasing in both levels — true of any physical
        DVFS power model.
        """
        check_non_negative("cap_w", cap_w)
        self._check_level("current_suspect_level", current_suspect_level)
        self._check_level("current_innocent_level", current_innocent_level)
        guard = cap_w * (1.0 - self.hysteresis)

        # Phase 1: innocent pool at nominal, search the suspect level.
        choice = self._highest_fitting(
            lambda p: predict(p, self.max_level),
            cap_w,
            guard,
            current_suspect_level,
        )
        if choice is not None:
            return ThrottlePlan(
                suspect_level=choice,
                innocent_level=self.max_level,
                predicted_power_w=predict(choice, self.max_level),
                feasible=True,
            )

        # Phase 2: suspect pool pinned at minimum, search innocent level.
        choice = self._highest_fitting(
            lambda q: predict(0, q), cap_w, guard, current_innocent_level
        )
        if choice is not None:
            return ThrottlePlan(
                suspect_level=0,
                innocent_level=choice,
                predicted_power_w=predict(0, choice),
                feasible=True,
            )

        # Phase 3: physically infeasible — deepest throttle everywhere.
        return ThrottlePlan(
            suspect_level=0,
            innocent_level=0,
            predicted_power_w=predict(0, 0),
            feasible=False,
        )

    def _highest_fitting(
        self,
        power_at: Callable[[int], float],
        cap_w: float,
        guard_w: float,
        current: int,
    ):
        """Highest level whose power fits; raising past *current* needs guard."""
        for level in range(self.max_level, -1, -1):
            power_w = power_at(level)
            limit = guard_w if level > current else cap_w
            if power_w <= limit:
                return level
        return None

    def _check_level(self, name: str, level: int) -> None:
        check_int(name, level, minimum=0)
        if level > self.max_level:
            raise ValueError(f"{name}={level} exceeds max_level={self.max_level}")
