"""Anti-DOPE: the full framework (paper Section 5, Table 2 row 4).

Anti-DOPE couples the two halves the rest of this package provides:

* **PDF** (:mod:`repro.core.pdf`) on the load-balancer side splits
  traffic by the offline suspect list and isolates high-power requests
  on a dedicated server pool;
* **RPM** (:mod:`repro.core.rpm`) on the power-manager side enforces
  the budget with differentiated DVFS (DPM, Algorithm 1), throttling
  the suspect pool first and using the battery only as a transition
  medium while V/F settings reconfigure.

:class:`AntiDopeScheme` packages both behind the standard
:class:`~repro.power.manager.PowerManagementScheme` interface, so it is
a drop-in peer of Capping/Shaving/Token — "orthogonal to prior power
management schemes and requires minute system modification".
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .._validation import check_fraction, check_int
from ..cluster.server import Server
from ..power.manager import PowerManagementScheme
from ..workloads.catalog import ALL_TYPES, RequestType
from .dpm import DPMPlanner
from .pdf import PDFPolicy
from .rpm import RequestAwarePowerManager
from .suspect_list import SuspectList

__all__ = ["AntiDopeScheme"]


class AntiDopeScheme(PowerManagementScheme):
    """Request-aware power management (PDF + RPM).

    Parameters
    ----------
    suspect_pool_size:
        Servers isolated for suspect traffic (default 1, as in the
        paper's 4-node mini rack).
    suspect_threshold_fraction:
        Offline-profiling threshold: a URL is suspect when its
        full-load power reaches this fraction of nameplate.
    use_battery_transition:
        When False, RPM runs without the battery ride-through — the
        ablation arm for the "battery as transition medium" design
        choice.
    suspect_queue_factor:
        Backlog bound of suspect-pool servers, as a multiple of their
        worker count.  This is DPM's request-regulation knob ("regulates
        the length of throttled requests"): a short suspect queue sheds
        excess high-power requests instead of letting a flood build an
        unbounded backlog that legitimate heavy requests would have to
        wait behind.  ``None`` leaves the servers' default backlog.
    profiled_types:
        Request types covered by the offline profile (defaults to the
        full catalog).
    suspect_list:
        Pre-built suspect list; overrides offline profiling entirely.
    hysteresis:
        DPM raise-guard band.
    """

    name = "anti-dope"

    def __init__(
        self,
        suspect_pool_size: int = 1,
        suspect_threshold_fraction: float = 0.70,
        use_battery_transition: bool = True,
        suspect_queue_factor: Optional[float] = 4.0,
        profiled_types: Sequence[RequestType] = ALL_TYPES,
        suspect_list: Optional[SuspectList] = None,
        hysteresis: float = 0.02,
    ) -> None:
        super().__init__()
        check_int("suspect_pool_size", suspect_pool_size, minimum=1)
        check_fraction(
            "suspect_threshold_fraction", suspect_threshold_fraction, inclusive=False
        )
        check_fraction("hysteresis", hysteresis)
        if suspect_queue_factor is not None and suspect_queue_factor < 1.0:
            raise ValueError(
                f"suspect_queue_factor must be >= 1, got {suspect_queue_factor}"
            )
        self.suspect_pool_size = suspect_pool_size
        self.suspect_threshold_fraction = suspect_threshold_fraction
        self.use_battery_transition = use_battery_transition
        self.suspect_queue_factor = suspect_queue_factor
        self.profiled_types: Tuple[RequestType, ...] = tuple(profiled_types)
        self.suspect_list = suspect_list
        self.hysteresis = hysteresis
        self.pdf: Optional[PDFPolicy] = None
        self.rpm: Optional[RequestAwarePowerManager] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, engine, rack, budget, battery, slot_s) -> None:
        """Attach infrastructure, build the suspect list, PDF and RPM."""
        super().bind(engine, rack, budget, battery, slot_s)
        if self.suspect_list is None:
            self.suspect_list = SuspectList.from_model(
                self.profiled_types,
                rack.power_model,
                threshold_fraction=self.suspect_threshold_fraction,
            )
        self.pdf = PDFPolicy(
            self.suspect_list,
            rack.servers,
            self.suspect_pool_size,
            obs=engine.obs,
        )
        if self.suspect_queue_factor is not None:
            for server in self.pdf.suspect_pool:
                cap = int(self.suspect_queue_factor * server.num_workers)
                server.queue_capacity = min(server.queue_capacity, cap)
        self.rpm = RequestAwarePowerManager(
            suspect_pool=self.pdf.suspect_pool,
            innocent_pool=self.pdf.innocent_pool,
            budget=budget,
            battery=battery if self.use_battery_transition else None,
            planner=DPMPlanner(rack.ladder.max_level, self.hysteresis),
            slot_s=slot_s,
            # RPM plans against the scheme's perceived power so an
            # attached (possibly faulty) sensor degrades it too.
            power_reader=self.current_power,
        )

    def forwarding_policy(self, servers: Sequence[Server]) -> PDFPolicy:
        """PDF — the suspect-aware forwarding policy for the NLB."""
        self._require_bound()
        return self.pdf

    def step(self) -> None:
        """One RPM control slot."""
        self._require_bound()
        self.rpm.step(self.engine.now)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def suspect_server_ids(self) -> List[int]:
        """Rack ids of the isolated suspect pool."""
        self._require_bound()
        return self.pdf.suspect_server_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pool = self.suspect_server_ids if self.bound else "?"
        return f"AntiDopeScheme(suspect_pool={pool})"
